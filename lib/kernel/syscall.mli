(** The system-call layer.

    The UNIX-flavoured API workload programs are written against. Every
    call charges the machine's per-syscall overhead, and the read/write
    family additionally charges the user/kernel copy ([copyin] /
    [copyout]) at the memory copy rate — exactly the costs splice
    eliminates. All calls must run inside a process coroutine; blocking
    calls check for pending signals on return, which is when installed
    handlers execute.

    Create one {!env} at the top of each process body:
    {[
      Machine.spawn m ~name:"cp" (fun () ->
          let env = Syscall.make_env m in
          let src = Syscall.openf env "/src/movie" [ O_RDONLY ] in
          ...)
    ]} *)

open Kpath_sim
open Kpath_proc
open Kpath_net
open Kpath_core

type env
(** A process's view of the kernel: machine + descriptor table. *)

val make_env : Machine.t -> env
(** Call inside the process body ([Process.self] is captured). *)

val machine : env -> Machine.t

val proc : env -> Process.t

type open_flag =
  | O_RDONLY
  | O_WRONLY
  | O_RDWR
  | O_CREAT  (** create the file if absent *)
  | O_TRUNC  (** truncate to empty on open *)

(** {1 Files and devices} *)

val openf : env -> string -> open_flag list -> int
(** Open a path: a registered character device or framebuffer under
    [/dev], else a file resolved through the mount table. *)

val close : env -> int -> unit

val read : env -> int -> bytes -> pos:int -> len:int -> int
(** Read into a user buffer; returns bytes read (0 at EOF). Charges
    copyout. On a framebuffer descriptor, blocks for (the prefix of) the
    next frame. *)

val write : env -> int -> bytes -> pos:int -> len:int -> int
(** Write from a user buffer; charges copyin. On a character device,
    blocks until the data is accepted (rate pacing). On a connected
    socket, sends one datagram. *)

val lseek : env -> int -> int -> int
(** Set the file offset (absolute); returns it. [ESPIPE] on
    non-seekable descriptors. *)

val fsync : env -> int -> unit
(** Force the file's data to its device — the call [cp] issues at the
    end of a copy in the paper's experiments. *)

val unlink : env -> string -> unit

val mkdir : env -> string -> unit

val hardlink : env -> string -> string -> unit
(** [hardlink env existing fresh] — link(2). Both paths must resolve to
    the same filesystem ([EXDEV]). *)

val rename : env -> string -> string -> unit
(** rename(2); same-filesystem only ([EXDEV]). *)

val fcntl_setfl : env -> int -> fasync:bool -> unit
(** Set or clear FASYNC — the paper's switch between asynchronous
    (SIGIO-completing) and synchronous splice. *)

val file_size : env -> int -> int
(** Size of the file behind a descriptor ([fstat]'s one useful field). *)

(** {1 Sockets} *)

val socket : env -> Netif.t -> port:int -> ?rcvbuf:int -> unit -> int

val socket_of : env -> Udp.t -> int
(** Adopt an already-created socket into the descriptor table (the
    moral equivalent of inheriting a descriptor). *)

val connect : env -> int -> Udp.addr -> unit
(** Set the default peer (enables [write] and splice-to-socket). *)

val sendto : env -> int -> Udp.addr -> bytes -> pos:int -> len:int -> unit
(** One datagram; charges copyin plus protocol processing. *)

val recvfrom : env -> int -> bytes -> pos:int -> len:int -> int * Udp.addr
(** Blocking receive; returns (bytes, sender). Charges copyout plus
    protocol processing. *)

val socket_addr : env -> int -> Udp.addr

(** {1 TCP} *)

val tcp_listen : env -> Netif.t -> port:int -> Tcp.listener
(** Bind a listening TCP port (the listener is not a descriptor; pass it
    to {!tcp_accept}). *)

val tcp_accept : env -> Tcp.listener -> int
(** Block for an inbound connection; returns its descriptor. *)

val tcp_connect :
  env -> Netif.t -> port:int -> dst:Tcp.addr -> ?rcvbuf:int -> unit -> int
(** Active open; blocks for the handshake and returns the descriptor.
    [read]/[write] on it are stream operations; it is a valid splice
    sink (the [sendfile] path). [rcvbuf] sizes the receive buffer
    (setsockopt SO_RCVBUF; default 64 KB). Raises [EIO] on connect
    timeout. *)

val tcp_conn : env -> int -> Tcp.conn
(** The connection behind a TCP descriptor ([EINVAL] otherwise). *)

(** {1 splice} *)

val splice_eof : int
(** The SPLICE_EOF size value. *)

val splice : env -> src:int -> dst:int -> int -> int
(** [splice env ~src ~dst size] — the paper's system call (§3). Moves
    [size] bytes ({!splice_eof} = until end of file) from the object
    behind [src] to the object behind [dst] inside the kernel.

    If either descriptor has FASYNC set, returns immediately with the
    scheduled byte count (0 for unbounded socket splices) and delivers
    SIGIO to the caller on completion; otherwise blocks until the
    transfer finishes and returns the bytes moved — for an unbounded
    socket source that means until the splice is aborted. File
    descriptor offsets advance by the transfer size and must be
    block-aligned on entry ([EINVAL]). A TCP descriptor as [dst] streams
    the file over the connection — [sendfile(2)], fifteen years early. *)

val splice_start : env -> src:int -> dst:int -> ?config:Flowctl.config -> int -> Splice.t
(** Expert form: start the splice and hand back the descriptor (for
    custom flow control, aborting, progress inspection). Offsets advance
    immediately. *)

(** {1 splice graphs} *)

val splice_graph :
  env ->
  srcs:int list ->
  dsts:int list ->
  ?config:Flowctl.config ->
  ?filters:Kpath_graph.Graph.filter list ->
  ?window:int ->
  int ->
  int
(** [splice_graph env ~srcs ~dsts size] — the graph form of {!splice}:
    one source fanned out to many sinks, or many sources fanned in to
    one file sink ([EINVAL] for many-to-many). Sources must be file
    descriptors; sinks may be files, TCP connections, connected UDP
    sockets or character devices. [size] bytes stream from each source
    ({!splice_eof} = to end of file).

    Fan-out reads each source block from the device {e once} and aliases
    the buffer to every sink — N clients cost one disk pass. [config]
    sets each edge's flow control, [filters] its in-kernel stages,
    [window] the per-source buffer budget.

    Blocking/FASYNC behaviour follows {!splice}: with FASYNC on any
    descriptor the call returns 0 immediately and SIGIO arrives on
    completion; otherwise it blocks and returns the total bytes
    delivered over all edges, raising [EIO] if the whole graph aborts.
    File offsets advance (sources by their streamed size, file sinks by
    the total received) and must be block-aligned ([EINVAL]). *)

val splice_graph_start :
  env ->
  srcs:int list ->
  dsts:int list ->
  ?config:Flowctl.config ->
  ?filters:Kpath_graph.Graph.filter list ->
  ?window:int ->
  int ->
  Kpath_graph.Graph.t
(** Expert form: build, start and hand back the graph (for per-edge
    inspection, {!Kpath_graph.Graph.abort_edge}, custom completion).
    Offsets advance immediately. *)

val prog_load : env -> string -> (Kpath_vm.Vm.prog, string) result
(** Load a filter program from its textual form: copyin the source,
    assemble it, and run the in-kernel verifier. [Ok prog] is a
    proof-carrying handle attachable to graph edges with
    {!Kpath_graph.Graph.filter.Prog} (through the [filters] argument of
    {!splice_graph}); [Error diag] renders the verifier's structured
    diagnostic — the violated rule's name and the offending instruction
    offset — or the assembler's parse error. Verification happens once,
    here, at load time; the data path then runs the program with no
    further checks, which is the point of the BPF-style split. *)

(** {1 Signals and timers} *)

val sigaction : env -> Signal.number -> (unit -> unit) option -> unit
(** Install or remove a handler (runs in process context). *)

val setitimer : env -> Time.span option -> unit
(** Arm a recurring interval timer delivering SIGALRM ([Some span]) or
    disarm it ([None]). *)

val pause : env -> unit
(** Sleep until a signal is delivered, then run its handler. *)

val sleep : env -> Time.span -> unit
(** Interruptible sleep (signals cut it short and run handlers). *)

val getpid : env -> int
