(** Kernel callout list.

    Models the classic BSD/Ultrix callout mechanism (`timeout()` /
    `untimeout()`): functions registered to run a number of clock ticks in
    the future, in (software-)interrupt context. splice() uses the callout
    list to decouple the read side from the write side — the read-completion
    handler places the write handler "at the head of the system callout
    list", i.e. to run at the very next dispatch, outside the disk
    interrupt itself. {!schedule_head} models exactly that. *)

type t
(** A callout list bound to an engine. *)

val create : ?tick:Time.span -> Engine.t -> t
(** [create ?tick engine] is a callout list whose clock ticks every
    [tick] (default 1 ms, HZ=1000-ish; Ultrix used HZ=256 but a finer tick
    only sharpens the simulation). *)

val tick : t -> Time.span
(** The tick period. *)

val timeout : t -> ticks:int -> (unit -> unit) -> Engine.handle
(** [timeout t ~ticks fn] runs [fn] after [ticks] clock ticks (at least
    one tick boundary in the future). *)

val timeout_span : t -> Time.span -> (unit -> unit) -> Engine.handle
(** [timeout_span t d fn] runs [fn] after the first tick boundary at or
    after duration [d]. *)

val schedule_head : t -> (unit -> unit) -> Engine.handle
(** [schedule_head t fn] places [fn] at the head of the callout list: it
    runs as soon as the current event (e.g. a device interrupt handler)
    finishes, at the current simulated instant, after a small dispatch
    latency accounted by the CPU layer of the caller. *)

val untimeout : t -> Engine.handle -> unit
(** Cancel a pending callout. *)

val dispatched : t -> int
(** Total number of callout functions dispatched so far (statistic). *)
