(** Logarithmic-bucket histogram for latency/size distributions. *)

type t
(** A histogram with power-of-two buckets. *)

val create : unit -> t
(** An empty histogram. *)

val add : t -> int -> unit
(** [add h v] records one sample [v >= 0]. Negative samples raise
    [Invalid_argument]. *)

val count : t -> int
(** Number of recorded samples. *)

val total : t -> int
(** Sum of all samples. *)

val mean : t -> float
(** Mean sample, or [nan] when empty. *)

val min_value : t -> int option
(** Smallest recorded sample. *)

val max_value : t -> int option
(** Largest recorded sample. *)

val percentile : t -> float -> int
(** [percentile h p] approximates the [p]-th percentile ([0 <= p <= 100])
    as the upper bound of the bucket containing it. Raises
    [Invalid_argument] when empty or [p] out of range. *)

val buckets : t -> (int * int * int) list
(** [(lo, hi, count)] for every non-empty bucket, ascending. *)

val pp : Format.formatter -> t -> unit
(** Render a compact textual summary. *)
