(** Rate-paced character devices (audio / video DACs).

    Models output devices like Sun's [/dev/audio] as the paper describes:
    the driver buffers writes in a bounded FIFO and the hardware drains it
    at the playback rate. A write completes when its data has been
    accepted into the FIFO — so a sustained writer is paced to the
    playback rate, which is what makes [splice(audiofile, audio_dev,
    SPLICE_EOF)] deliver audio on time. The device counts underruns
    (drain ticks that found the FIFO empty while a stream was active),
    the audible-glitch metric used by the movie-player example. *)

open Kpath_sim

type t
(** A character device instance. *)

val create :
  name:string ->
  drain_rate:float ->
  fifo_capacity:int ->
  ?drain_quantum:int ->
  ?capture_limit:int ->
  engine:Engine.t ->
  intr:Blkdev.intr ->
  unit ->
  t
(** [create ()] builds a device draining [drain_rate] bytes/second from a
    [fifo_capacity]-byte FIFO in [drain_quantum]-byte ticks (default
    1 KB). The first [capture_limit] consumed bytes (default 256 KB) are
    retained for integrity checks. *)

val name : t -> string

val write_async : t -> bytes -> int -> int -> (unit -> unit) -> unit
(** [write_async t data off len k] queues [len] bytes for output and
    calls [k] (in interrupt context) once they have all been accepted
    into the FIFO. Writes are admitted in FIFO order. *)

val try_write : t -> bytes -> int -> int -> int
(** [try_write t data off len] accepts as many bytes as currently fit
    (possibly 0) and returns the count — the non-blocking path. Fails
    with [Invalid_argument] if writers are already queued. *)

val fifo_level : t -> int
(** Bytes currently buffered. *)

val fifo_capacity : t -> int

val consumed : t -> int
(** Total bytes drained ("played") so far. *)

val underruns : t -> int
(** Drain ticks that found an empty FIFO while data had been written
    before and the stream was not yet closed. *)

val captured : t -> string
(** The first [capture_limit] bytes of the consumed stream. *)

val close_stream : t -> unit
(** Declare the stream finished: an empty FIFO no longer counts as an
    underrun. A later write reopens the stream. *)

val drain_rate : t -> float
