open Kpath_sim

type t = {
  name : string;
  syscall_overhead : Time.span;
  ctx_switch_cost : Time.span;
  quantum : Time.span;
  disk_intr_service : Time.span;
  splice_handler_cost : Time.span;
  splice_setup_per_block : Time.span;
  udp_proto_cost : Time.span;
  page_fault_cost : Time.span;
  callout_tick : Time.span;
  vm_insn_cost : Time.span;
  vm_backend : [ `Interp | `Compiled | `Checked ];
  sim_engine : Engine.backend;
  copy_rate : float;
  block_size : int;
  cache_bytes : int;
  max_cluster : int;
  ramdisk_blocks : int;
  sim_domains : int;
}

let decstation_5000_200 =
  {
    name = "DECstation 5000/200 (25MHz R3000, Ultrix 4.2A)";
    syscall_overhead = Time.us 30;
    ctx_switch_cost = Time.us 100;
    quantum = Time.ms 10;
    disk_intr_service = Time.us 60;
    splice_handler_cost = Time.us 25;
    splice_setup_per_block = Time.us 5;
    udp_proto_cost = Time.us 120;
    page_fault_cost = Time.us 500;
    callout_tick = Time.ms 1;
    (* One dispatched filter-program instruction: a handful of R3000
       cycles. Charged per r_steps whichever backend executes the
       program, so the simulated timeline is backend-independent. *)
    vm_insn_cost = Time.ns 100;
    (* Closure-compiled programs are the default; `Interp keeps the
       direct interpreter (same verdicts, emits and step counts —
       bit-identical simulation, slower host). *)
    vm_backend = `Compiled;
    (* The timing-wheel event queue is observationally identical to the
       binary heap; it is the default because thousand-client sweeps
       are an order of magnitude faster on it. *)
    sim_engine = `Wheel;
    (* Effective large-copy bcopy rate: each byte is read uncached
       (10 MB/s) and written (20 MB/s) => 1/(1/10+1/20) ~ 6.7 MB/s.
       The 8 KB blocks moved here do not fit the 64 KB data cache once
       the loop touches user buffer + cache buffer + device memory. *)
    copy_rate = 6.7e6;
    block_size = 8192;
    cache_bytes = 3_200 * 1024;
    (* Cluster up to 8 contiguous blocks (64 KB) per device request —
       the transfer unit §7 proposes to amortise per-block strategy and
       interrupt costs. 1 disables clustering (the per-block paths). *)
    max_cluster = 8;
    ramdisk_blocks = 2048 (* 16 MB / 8 KB *);
    (* Host-side parallelism for shardable sweeps (fan-out clients
       partitioned over OCaml domains); 1 = everything in the calling
       domain. Results are bit-identical at any value. *)
    sim_domains = 1;
  }

let scale_span f span = Time.of_us_f (Time.to_us_f span /. f)

let scaled c ~cpu_factor =
  if cpu_factor <= 0.0 then invalid_arg "Config.scaled: factor <= 0";
  {
    c with
    name = Printf.sprintf "%s (x%.2g CPU)" c.name cpu_factor;
    syscall_overhead = scale_span cpu_factor c.syscall_overhead;
    ctx_switch_cost = scale_span cpu_factor c.ctx_switch_cost;
    disk_intr_service = scale_span cpu_factor c.disk_intr_service;
    splice_handler_cost = scale_span cpu_factor c.splice_handler_cost;
    splice_setup_per_block = scale_span cpu_factor c.splice_setup_per_block;
    udp_proto_cost = scale_span cpu_factor c.udp_proto_cost;
    page_fault_cost = scale_span cpu_factor c.page_fault_cost;
    vm_insn_cost = scale_span cpu_factor c.vm_insn_cost;
    copy_rate = c.copy_rate *. cpu_factor;
  }

let decstation_5000_240 =
  {
    (scaled decstation_5000_200 ~cpu_factor:(40.0 /. 25.0)) with
    name = "DECstation 5000/240 (40MHz R3400, Ultrix 4.2A)";
  }

let copy_cost c n = Time.span_of_bytes ~bytes_per_sec:c.copy_rate n

let cache_nbufs c = c.cache_bytes / c.block_size

let pp fmt c =
  Format.fprintf fmt
    "%s: syscall=%a ctx=%a copy=%.1fMB/s block=%d cache=%dKB" c.name Time.pp
    c.syscall_overhead Time.pp c.ctx_switch_cost (c.copy_rate /. 1e6)
    c.block_size (c.cache_bytes / 1024)
