(** The paper's user programs, as simulated processes.

    Three programs drive the §6 experiments: a compute-bound test
    program measuring CPU availability, the classic read/write [cp], and
    the splice-based [scp]. All are ordinary coroutine bodies built on
    {!Kpath_kernel.Syscall}. *)

open Kpath_sim
open Kpath_proc
open Kpath_core
open Kpath_kernel

type copy_stats = {
  mutable bytes_copied : int;
  mutable copies_done : int;  (** complete file copies finished *)
  mutable copy_started : Time.t;
  mutable copy_finished : Time.t;  (** of the last completed copy *)
}

val fresh_copy_stats : unit -> copy_stats

type test_stats = {
  mutable ops_done : int;
  mutable test_started : Time.t;  (** when the test program was started *)
  mutable test_finished : Time.t option;
}

val fresh_test_stats : unit -> test_stats

val pattern_byte : int -> char
(** Deterministic file contents: byte at offset [i]. Writers generate it
    and verifiers recompute it. *)

val fill_pattern : bytes -> file_off:int -> unit
(** Fill a buffer with the pattern for a chunk starting at [file_off]. *)

val pattern_mismatches : bytes -> pos:int -> len:int -> file_off:int -> int
(** Number of bytes in [buf.[pos..pos+len)] that differ from the pattern
    at [file_off..] — a bounds-unchecked tight loop, the verifier for
    streaming experiments that cross gigabytes. *)

val spawn_test_program :
  Machine.t -> ops:int -> ?op_cost:Time.span -> test_stats -> Process.t
(** The CPU-availability probe: performs [ops] compute operations of
    [op_cost] each (default 1 ms), recording completion time. *)

val spawn_file_writer :
  Machine.t -> path:string -> bytes:int -> ?chunk:int -> unit -> Process.t
(** Create (or truncate) a file and fill it with the pattern through
    ordinary writes, then [fsync] — the experiment setup step. *)

val spawn_cp :
  Machine.t ->
  src:string ->
  dst:string ->
  ?bufsize:int ->
  ?pace:float ->
  ?loop_until:bool ref ->
  copy_stats ->
  Process.t
(** The baseline copier: an 8 KB read/write loop ending in [fsync]
    (§6.2). With [loop_until] it repeats whole-file copies until the
    flag turns true (the CP contention environment). With [pace] (bytes
    per second) the loop throttles itself to a fixed application data
    rate — the continuous-media regime the paper's introduction
    motivates, used by the CPU-availability experiment so both copy
    mechanisms move data at the same rate. *)

val spawn_scp :
  Machine.t ->
  src:string ->
  dst:string ->
  ?config:Flowctl.config ->
  ?chunk_bytes:int ->
  ?pace:float ->
  ?loop_until:bool ref ->
  copy_stats ->
  Process.t
(** The splice-based copier. Unpaced: one synchronous whole-file splice
    per copy. Paced: bounded-size splices of [chunk_bytes] (default
    64 KB) at the target rate — the paper's §4 technique of limiting the
    transfer quantum to control the rate. *)

val spawn_mcp :
  Machine.t ->
  src:string ->
  dst:string ->
  ?loop_until:bool ref ->
  copy_stats ->
  Process.t
(** The memory-mapped copier the paper's §7 contrasts with (Govindan &
    Anderson-style): map source and destination, then one user-space
    copy per page. Modeled per page pair: two page faults (trap + PTE
    cost each), a device read for the source page, one user copy, and a
    delayed write-back of the dirty destination page, with an msync at
    the end. Eliminates [read]/[write] syscalls and one copy versus
    [cp], but keeps the process and the VM machinery on the data path —
    exactly the contrast the paper draws. *)

val spawn_verifier :
  Machine.t -> path:string -> expect_bytes:int -> (bool -> unit) -> Process.t
(** Read the file back and check it against the pattern; the callback
    receives the verdict. *)
