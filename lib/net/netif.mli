(** Network interfaces on a shared segment.

    A {!Net.t} models one Ethernet-class segment: every attached
    interface can send to every other by interface id. Each interface
    serialises its own transmissions at the link bandwidth (the classic
    10 Mbit/s bottleneck), after which the frame propagates with a small
    latency and is delivered to the destination through its receive
    interrupt. Delivery is a callback; {!Udp} demultiplexes to sockets. *)

open Kpath_sim
open Kpath_dev

type net
(** A network segment. *)

type t
(** An attached interface. *)

type frame = {
  f_src : int;  (** source interface id *)
  f_dst : int;  (** destination interface id *)
  f_proto : int;  (** transport protocol (17 = UDP, 6 = TCP) *)
  f_port_src : int;
  f_port_dst : int;
  f_payload : bytes;  (** not copied — receivers must not mutate *)
}

val create_net :
  ?bandwidth:float -> ?latency:Time.span -> ?mtu:int -> Engine.t -> net
(** A segment. Defaults: 10 Mbit/s (1.25 MB/s), 100 us latency, 9000-byte
    MTU (an FDDI-class local segment, as a 1992 multimedia lab would
    covet). *)

val attach :
  net ->
  name:string ->
  ?rx_intr_service:Time.span ->
  ?tx_intr_service:Time.span ->
  intr:Blkdev.intr ->
  unit ->
  t
(** Attach an interface. [intr] injects its interrupt costs into that
    host's CPU (stub hosts pass a free-running injector). *)

val id : t -> int
(** The interface id, unique on its segment. *)

val name : t -> string

val mtu : net -> int

val net : t -> net
(** The segment an interface is attached to. *)

val engine : net -> Engine.t
(** The event engine driving the segment (for transport timers). *)

val set_proto_rx : t -> proto:int -> (frame -> unit) -> unit
(** Install the receive upcall for one transport protocol (runs in
    interrupt context). Frames arriving for a protocol with no upcall
    are dropped and counted. *)

val send :
  t -> dst:int -> ?proto:int -> port_src:int -> port_dst:int -> bytes -> unit
(** Queue one frame for transmission (default protocol: UDP). Raises
    [Invalid_argument] if the payload exceeds the MTU or the destination
    id is unknown. *)

val set_loss : net -> ?seed:int -> float -> unit
(** Drop each transmitted frame independently with the given probability
    (deterministic splitmix64 stream; [seed] defaults to 1) — for
    exercising retransmission. [0.0] disables loss. *)

val stats : t -> Stats.t
(** [netif.tx], [netif.rx], [netif.dropped_no_rx], [netif.tx_bytes],
    [netif.rx_bytes]. *)

val queued : t -> int
(** Frames waiting in this interface's transmit queue. *)
