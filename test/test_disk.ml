open Kpath_sim
open Kpath_dev

let make_disk ?(geometry = Disk.rz56) ?(nblocks = 1024) () =
  let engine = Engine.create () in
  let disk =
    Disk.create ~name:"d0" ~geometry ~block_size:8192 ~nblocks
      ~intr_service:(Time.us 60) ~engine ~intr:Util.free_intr ()
  in
  (engine, disk)

let req ~blkno ~write ?(nblk = 1) ~done_ () =
  {
    Blkdev.r_blkno = blkno;
    r_data = Bytes.create (8192 * nblk);
    r_count = 8192 * nblk;
    r_write = write;
    r_done = done_;
  }

let run_one engine dev r =
  let fin = ref None in
  dev.Blkdev.dv_strategy
    { r with Blkdev.r_done = (fun e -> r.Blkdev.r_done e; fin := Some (Engine.now engine)) };
  Engine.run engine;
  match !fin with Some t -> t | None -> Alcotest.fail "request never completed"

let test_write_read_roundtrip () =
  let engine, disk = make_disk () in
  let dev = Disk.blkdev disk in
  let data = Bytes.create 8192 in
  Bytes.fill data 0 8192 'z';
  dev.Blkdev.dv_strategy
    { Blkdev.r_blkno = 7; r_data = data; r_count = 8192; r_write = true;
      r_done = (fun e -> Alcotest.(check bool) "no error" true (e = None)) };
  Engine.run engine;
  let out = Bytes.create 8192 in
  dev.Blkdev.dv_strategy
    { Blkdev.r_blkno = 7; r_data = out; r_count = 8192; r_write = false;
      r_done = (fun e -> Alcotest.(check bool) "no error" true (e = None)) };
  Engine.run engine;
  Alcotest.(check bytes) "data round-trips" data out;
  Alcotest.(check int) "serviced" 2 (Disk.serviced disk)

let test_unwritten_reads_zero () =
  let engine, disk = make_disk () in
  let dev = Disk.blkdev disk in
  let out = Bytes.make 8192 'x' in
  dev.Blkdev.dv_strategy
    { Blkdev.r_blkno = 3; r_data = out; r_count = 8192; r_write = false;
      r_done = (fun _ -> ()) };
  Engine.run engine;
  Alcotest.(check bytes) "zeroes" (Bytes.make 8192 '\000') out

let test_random_read_costs_seek () =
  let engine, disk = make_disk () in
  let dev = Disk.blkdev disk in
  let t = run_one engine dev (req ~blkno:500 ~write:false ~done_:(fun _ -> ()) ()) in
  (* Seek + rotational latency + media transfer: must exceed the
     media-only time by at least the rotational latency. *)
  let media = Time.span_of_bytes ~bytes_per_sec:Disk.rz56.Disk.media_rate 8192 in
  Alcotest.(check bool) "paid positioning" true
    Time.(t >= Time.add media Disk.rz56.Disk.avg_rot_latency);
  Alcotest.(check int) "one seek" 1 (Disk.seeks disk)

let test_sequential_stream_at_media_rate () =
  let engine, disk = make_disk () in
  let dev = Disk.blkdev disk in
  let n = 64 in
  let fin = ref Time.zero in
  let rec issue i =
    if i < n then
      dev.Blkdev.dv_strategy
        (req ~blkno:i ~write:false
           ~done_:(fun _ ->
             fin := Engine.now engine;
             issue (i + 1))
           ())
  in
  issue 0;
  Engine.run engine;
  let expect =
    Time.span_of_bytes ~bytes_per_sec:Disk.rz56.Disk.media_rate (n * 8192)
  in
  (* Within 30% of pure streaming. *)
  let ratio = Time.to_sec_f !fin /. Time.to_sec_f expect in
  if ratio > 1.3 then Alcotest.failf "stream too slow: %.2fx media" ratio;
  Alcotest.(check bool) "mostly cache hits after warmup" true
    (Disk.cache_hits disk > n / 2)

let test_sequential_faster_than_random () =
  let seq =
    let engine, disk = make_disk () in
    let dev = Disk.blkdev disk in
    let fin = ref Time.zero in
    let rec issue i =
      if i < 32 then
        dev.Blkdev.dv_strategy
          (req ~blkno:i ~write:false
             ~done_:(fun _ -> fin := Engine.now engine; issue (i + 1)) ())
    in
    issue 0;
    Engine.run engine;
    !fin
  in
  let rnd =
    let engine, disk = make_disk () in
    let dev = Disk.blkdev disk in
    let rng = Rng.create ~seed:1 in
    let fin = ref Time.zero in
    let rec issue i =
      if i < 32 then
        dev.Blkdev.dv_strategy
          (req ~blkno:(Rng.int rng 1024) ~write:false
             ~done_:(fun _ -> fin := Engine.now engine; issue (i + 1)) ())
    in
    issue 0;
    Engine.run engine;
    !fin
  in
  Alcotest.(check bool) "sequential at least 3x faster" true
    (Time.to_sec_f rnd > 3.0 *. Time.to_sec_f seq)

let test_rz58_faster_than_rz56 () =
  let run geometry =
    let engine, disk = make_disk ~geometry () in
    let dev = Disk.blkdev disk in
    let fin = ref Time.zero in
    let rec issue i =
      if i < 64 then
        dev.Blkdev.dv_strategy
          (req ~blkno:i ~write:false
             ~done_:(fun _ -> fin := Engine.now engine; issue (i + 1)) ())
    in
    issue 0;
    Engine.run engine;
    !fin
  in
  Alcotest.(check bool) "rz58 streams faster" true
    Time.(run Disk.rz58 < run Disk.rz56)

let test_sequential_write_stream () =
  let engine, disk = make_disk () in
  let dev = Disk.blkdev disk in
  let fin = ref Time.zero in
  let rec issue i =
    if i < 32 then
      dev.Blkdev.dv_strategy
        (req ~blkno:i ~write:true
           ~done_:(fun _ -> fin := Engine.now engine; issue (i + 1)) ())
  in
  issue 0;
  Engine.run engine;
  let expect =
    Time.span_of_bytes ~bytes_per_sec:Disk.rz56.Disk.media_rate (32 * 8192)
  in
  let ratio = Time.to_sec_f !fin /. Time.to_sec_f expect in
  if ratio > 1.3 then Alcotest.failf "write stream too slow: %.2fx" ratio

let test_write_invalidates_readahead () =
  let engine, disk = make_disk () in
  let dev = Disk.blkdev disk in
  (* Prime a read-ahead segment on blocks 0..3, write into block 4,
     then read 4: data must be the new data. *)
  let rec prime i k =
    if i < 4 then
      dev.Blkdev.dv_strategy (req ~blkno:i ~write:false ~done_:(fun _ -> prime (i + 1) k) ())
    else k ()
  in
  let data = Bytes.make 8192 'w' in
  prime 0 (fun () ->
      dev.Blkdev.dv_strategy
        { Blkdev.r_blkno = 4; r_data = data; r_count = 8192; r_write = true;
          r_done =
            (fun _ ->
              let out = Bytes.create 8192 in
              dev.Blkdev.dv_strategy
                { Blkdev.r_blkno = 4; r_data = out; r_count = 8192;
                  r_write = false;
                  r_done = (fun _ -> Alcotest.(check bytes) "fresh data" data out) }) });
  Engine.run engine

let test_multi_block_request () =
  let engine, disk = make_disk () in
  let dev = Disk.blkdev disk in
  let data = Bytes.init (4 * 8192) (fun i -> Char.chr (i land 0xff)) in
  dev.Blkdev.dv_strategy
    { Blkdev.r_blkno = 10; r_data = data; r_count = 4 * 8192; r_write = true;
      r_done = (fun _ -> ()) };
  Engine.run engine;
  Alcotest.(check bytes) "block 12 holds third chunk"
    (Bytes.sub data (2 * 8192) 8192)
    (Disk.read_block_direct disk 12)

let test_error_injection () =
  let engine, disk = make_disk () in
  let dev = Disk.blkdev disk in
  Disk.inject_error disk ~blkno:5;
  let got = ref None in
  dev.Blkdev.dv_strategy (req ~blkno:5 ~write:false ~done_:(fun e -> got := e) ());
  Engine.run engine;
  (match !got with
   | Some (Blkdev.Io_error _) -> ()
   | _ -> Alcotest.fail "expected injected error");
  (* One-shot: the next access succeeds. *)
  let got2 = ref (Some (Blkdev.Io_error "unset")) in
  dev.Blkdev.dv_strategy (req ~blkno:5 ~write:false ~done_:(fun e -> got2 := e) ());
  Engine.run engine;
  Alcotest.(check bool) "second access clean" true (!got2 = None)

let test_request_validation () =
  let _, disk = make_disk () in
  let dev = Disk.blkdev disk in
  let bad blkno count =
    try
      dev.Blkdev.dv_strategy
        { Blkdev.r_blkno = blkno; r_data = Bytes.create (max count 1);
          r_count = count; r_write = false; r_done = (fun _ -> ()) };
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "negative block" true (bad (-1) 8192);
  Alcotest.(check bool) "past end" true (bad 1024 8192);
  Alcotest.(check bool) "partial block" true (bad 0 100);
  Alcotest.(check bool) "zero count" true (bad 0 0)

let test_queue_fifo () =
  let engine, disk = make_disk () in
  let dev = Disk.blkdev disk in
  let order = ref [] in
  List.iter
    (fun b ->
      dev.Blkdev.dv_strategy
        (req ~blkno:b ~write:false ~done_:(fun _ -> order := b :: !order) ()))
    [ 100; 200; 300 ];
  Alcotest.(check int) "pending counts in-flight" 3 (dev.Blkdev.dv_pending ());
  Engine.run engine;
  Alcotest.(check (list int)) "FIFO service" [ 100; 200; 300 ] (List.rev !order);
  Alcotest.(check bool) "idle after" true (not (Disk.busy disk))

let test_segmented_readahead_handles_two_streams () =
  (* Two interleaved sequential read streams: the RZ58's 4 cache
     segments keep both streaming; the RZ56's single segment thrashes.
     (Both through FIFO queues, alternating requests.) *)
  let run geometry =
    let engine = Engine.create () in
    let disk =
      Disk.create ~name:"d" ~geometry ~block_size:8192 ~nblocks:1024
        ~intr_service:(Time.us 60) ~engine ~intr:Util.free_intr ()
    in
    let dev = Disk.blkdev disk in
    let n = 48 in
    let fin = ref Time.zero in
    let rec issue i =
      if i < n then begin
        let blkno = if i mod 2 = 0 then i / 2 else 512 + (i / 2) in
        dev.Blkdev.dv_strategy
          (req ~blkno ~write:false
             ~done_:(fun _ ->
               fin := Engine.now engine;
               issue (i + 1))
             ())
      end
    in
    issue 0;
    Engine.run engine;
    (Time.to_sec_f !fin, Disk.cache_hits disk)
  in
  let t56, hits56 = run Disk.rz56 in
  let t58, hits58 = run Disk.rz58 in
  Alcotest.(check bool) "rz58 segments give more hits" true (hits58 > hits56);
  (* Normalise away the media-rate difference (2.1 vs 1.66 MB/s). *)
  let norm56 = t56 *. 1.66 and norm58 = t58 *. 2.1 in
  Alcotest.(check bool) "rz58 relatively faster on interleaved streams" true
    (norm58 < norm56)

let test_elevator_orders_by_position () =
  let engine = Engine.create () in
  let disk =
    Disk.create ~name:"d0" ~geometry:Disk.rz56 ~block_size:8192 ~nblocks:1024
      ~intr_service:(Time.us 60) ~queue:Disk.Elevator ~engine
      ~intr:Util.free_intr ()
  in
  let dev = Disk.blkdev disk in
  let order = ref [] in
  (* Queue far-away first, then near: the elevator must service the
     near ones on its way out. First request (block 900) starts service
     immediately; the rest are reordered. *)
  List.iter
    (fun b ->
      dev.Blkdev.dv_strategy
        (req ~blkno:b ~write:false ~done_:(fun _ -> order := b :: !order) ()))
    [ 900; 700; 100; 300; 800 ];
  Engine.run engine;
  Alcotest.(check (list int)) "C-LOOK sweep" [ 900; 100; 300; 700; 800 ]
    (List.rev !order)

let test_elevator_beats_fifo_on_interleaved_streams () =
  let run queue =
    let engine = Engine.create () in
    let disk =
      Disk.create ~name:"d0" ~geometry:Disk.rz56 ~block_size:8192 ~nblocks:1024
        ~intr_service:(Time.us 60) ~queue ~engine ~intr:Util.free_intr ()
    in
    let dev = Disk.blkdev disk in
    (* Two interleaved sequential streams far apart, requests issued in
       alternating order with queue depth 4. *)
    let fin = ref Time.zero in
    let n = 32 in
    let blk i = if i mod 2 = 0 then i / 2 else 512 + (i / 2) in
    let outstanding = ref 0 and next = ref 0 in
    let rec pump () =
      while !outstanding < 4 && !next < n do
        let b = blk !next in
        incr next;
        incr outstanding;
        dev.Blkdev.dv_strategy
          (req ~blkno:b ~write:false
             ~done_:(fun _ ->
               decr outstanding;
               fin := Engine.now engine;
               pump ())
             ())
      done
    in
    pump ();
    Engine.run engine;
    !fin
  in
  let fifo = run Disk.Fifo and elev = run Disk.Elevator in
  Alcotest.(check bool) "elevator no slower" true Time.(elev <= fifo)

(* [find_segment] / [invalidate_around] scan read-ahead segments linearly
   on every request, so [create] caps [readahead_segments]: the shipped
   geometries must fit under the cap, and an oversized geometry must be
   refused loudly. *)
let test_max_segments_guard () =
  List.iter
    (fun (name, (g : Disk.geometry)) ->
      Alcotest.(check bool)
        (name ^ " fits under max_segments")
        true
        (g.Disk.readahead_segments <= Disk.max_segments))
    [ ("rz56", Disk.rz56); ("rz58", Disk.rz58) ];
  let engine = Engine.create () in
  let bad =
    { Disk.rz58 with Disk.readahead_segments = Disk.max_segments + 1 }
  in
  Alcotest.check_raises "oversized geometry refused"
    (Invalid_argument
       (Printf.sprintf
          "Disk.create: %d read-ahead segments > %d (find_segment and \
           invalidate_around scan segments linearly on every request)"
          (Disk.max_segments + 1) Disk.max_segments)) (fun () ->
      ignore
        (Disk.create ~name:"bad" ~geometry:bad ~block_size:8192 ~nblocks:64
           ~intr_service:(Time.us 60) ~engine ~intr:Util.free_intr ()))

let suite =
  [
    Alcotest.test_case "write/read round trip" `Quick test_write_read_roundtrip;
    Alcotest.test_case "unwritten reads zero" `Quick test_unwritten_reads_zero;
    Alcotest.test_case "random read pays seek" `Quick test_random_read_costs_seek;
    Alcotest.test_case "sequential stream rate" `Quick test_sequential_stream_at_media_rate;
    Alcotest.test_case "sequential vs random" `Quick test_sequential_faster_than_random;
    Alcotest.test_case "rz58 beats rz56" `Quick test_rz58_faster_than_rz56;
    Alcotest.test_case "sequential writes stream" `Quick test_sequential_write_stream;
    Alcotest.test_case "write invalidates cache" `Quick test_write_invalidates_readahead;
    Alcotest.test_case "multi-block request" `Quick test_multi_block_request;
    Alcotest.test_case "error injection" `Quick test_error_injection;
    Alcotest.test_case "request validation" `Quick test_request_validation;
    Alcotest.test_case "queue is FIFO" `Quick test_queue_fifo;
    Alcotest.test_case "segmented read-ahead" `Quick test_segmented_readahead_handles_two_streams;
    Alcotest.test_case "elevator ordering" `Quick test_elevator_orders_by_position;
    Alcotest.test_case "elevator vs FIFO" `Quick test_elevator_beats_fifo_on_interleaved_streams;
    Alcotest.test_case "max_segments guard" `Quick test_max_segments_guard;
  ]
