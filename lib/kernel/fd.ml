open Kpath_dev
open Kpath_fs
open Kpath_net

type file_handle = {
  fs : Fs.t;
  ino : Inode.t;
  mutable offset : int;
  readable : bool;
  writable : bool;
}

type socket_handle = { sock : Udp.t; mutable peer : Udp.addr option }

type kind =
  | File of file_handle
  | Chardev of Chardev.t
  | Socket of socket_handle
  | Tcp of Tcp.conn
  | Framebuffer of Framebuffer.t

type openfile = { of_kind : kind; mutable of_fasync : bool }

type table = {
  mutable next : int;
  slots : (int, openfile) Hashtbl.t;
  mutable fds : int list;
      (* open descriptors, descending — [next] is monotonic, so alloc
         is an O(1) cons and [all_fds] a reversal, never a sort *)
}

let create () = { next = 3; slots = Hashtbl.create 16; fds = [] }

let alloc t kind =
  let fd = t.next in
  t.next <- fd + 1;
  Hashtbl.add t.slots fd { of_kind = kind; of_fasync = false };
  t.fds <- fd :: t.fds;
  fd

let get t fd =
  match Hashtbl.find_opt t.slots fd with
  | Some f -> f
  | None -> Errno.raise_errno Errno.EBADF (Printf.sprintf "fd %d" fd)

let close t fd =
  let f = get t fd in
  Hashtbl.remove t.slots fd;
  t.fds <- List.filter (fun x -> x <> fd) t.fds;
  f

let open_count t = Hashtbl.length t.slots

let all_fds t = List.rev t.fds
