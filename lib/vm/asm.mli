(** Textual format for filter programs.

    A program is line-oriented: [;] starts a comment, blank lines are
    skipped. Header directives come in any order before or between
    instructions:

    {v
    fuel 400000        ; declared execution budget (required)
    scratch 4          ; scratch arena cells (default 0)
    context readonly   ; or "edge" (the default)
    v}

    Instructions are a mnemonic plus comma-separated operands.
    Registers are [r0]..[r7]; immediates are decimal or [0x]-hex,
    optionally negative. Jump targets are labels ([name:] on its own
    line or before an instruction); the assembler resolves them to
    relative offsets, and the verifier rejects backward ones.

    {v
    ; drop every 4th block, pass the rest
        blkno r0
        rem r0, 4
        jne r0, 0, keep
        drop
    keep:
        ret
    v}

    Mnemonics: [mov add sub mul div rem and or xor shl shr] (reg,
    operand); [len blkno] (reg); [ldp] (reg, operand); [stp] (operand,
    operand); [lds] (reg, imm); [sts] (imm, operand); [ldsx] (reg,
    reg); [stsx] (reg, operand) — scratch indexed by a register,
    masked to the power-of-two arena size; [jmp] (label);
    [jeq jne jlt jge] (reg, operand, label); [loop] (operand, imm);
    [end]; [emit] (operand, operand); [drop]; [redirect] (operand);
    [ret]. *)

val parse : string -> (Vm.spec, string) result
(** Assemble source text. Errors are ["line N: why"]. *)

val load : string -> (Vm.prog, string) result
(** {!parse} then {!Vm.verify}; verifier rejections are rendered with
    {!Vm.diag_to_string}. *)

val insn_to_string : pc:int -> Vm.insn -> string
(** One instruction as listing text — mnemonic and operands, jump
    targets rendered as the absolute pc they resolve to (what
    [kpathctl prog] prints next to each pc). Unlike {!print} this is
    for display, not for reassembly. *)

val print : Vm.prog -> string
(** Disassemble to source text that {!load} accepts and that assembles
    back to the same instruction sequence (generated labels [LN]). *)
