(* Known-bad fixture: [@kpath.domainsafe ""] -- an escape with no
   justification. The empty string is a [bad-annotation] finding, and
   an invalid annotation does not suppress the underlying rule, so the
   binding is still flagged [domain-global-mutable].
   Expected: exactly those two findings. *)

type pool = { mutable free : int list }

let[@kpath.domainsafe ""] shared_pool = { free = [] }
