(** Named counters and gauges for simulation statistics.

    Every subsystem registers counters in a [Stats.t] registry so that
    experiment drivers can print a uniform report and tests can assert on
    event counts without threading ad-hoc references around. *)

type t
(** A statistics registry. *)

type counter
(** A monotonically increasing counter. *)

val create : unit -> t
(** An empty registry. *)

val counter : t -> string -> counter
(** [counter t name] returns the counter registered under [name],
    creating it at zero on first use. *)

val incr : counter -> unit
(** Add one. *)

val add : counter -> int -> unit
(** [add c n] adds [n >= 0]. Raises [Invalid_argument] on negative [n]. *)

val value : counter -> int
(** Current count. *)

val get : t -> string -> int
(** [get t name] is the value of the named counter, or [0] when it was
    never created. *)

val histogram : t -> string -> Histogram.t
(** [histogram t name] returns the named histogram, creating it empty on
    first use. *)

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)

val reset : t -> unit
(** Zero all counters and clear all histograms (identities survive). *)

val pp : Format.formatter -> t -> unit
(** Print all counters, one per line. *)
