(* Nested-module escapes: [@kpath.nolint] on bindings reached through a
   module path (Outer.Inner) must suppress exactly the named rule and
   nothing else. Expected: one finding, [rng] (the unsuppressed
   violation below); the justified hashtbl-order and buf-leak escapes
   are honored even though their bindings are two modules deep. *)

module Buf = struct
  type t = { mutable data : int }
end

module Cache = struct
  let bread (_dev : int) (_blkno : int) : Buf.t = { Buf.data = 0 }

  let brelse (_b : Buf.t) = ()
end

module Outer = struct
  module Inner = struct
    (* Suppressed: diagnostic dump, enumeration order immaterial. *)
    let[@kpath.nolint "hashtbl-order: debug dump, order immaterial"] dump
        (tbl : (string, int) Hashtbl.t) =
      Hashtbl.iter (fun k v -> Printf.printf "%s=%d\n" k v) tbl

    (* Suppressed: the header is parked for a completion handler the
       checker cannot see from here. *)
    let[@kpath.nolint "buf-leak: parked for the completion chain"] park () =
      let b = Cache.bread 0 7 in
      ignore b.Buf.data

    (* NOT suppressed: the hashtbl-order escape above must not leak
       onto this sibling. *)
    let jitter () = Random.int 10

    let balanced () =
      let b = Cache.bread 0 9 in
      ignore b.Buf.data;
      Cache.brelse b
  end
end
