(* kpathctl: command-line driver for the kpath simulator.

   Subcommands:
     kpathctl info                         machine cost model
     kpathctl copy   [--disk ...] ...      one measured copy
     kpathctl cluster [--sizes N,...]      clustered-I/O transfer-size sweep
     kpathctl table1 [--ops N] [--natural] CPU availability rows
     kpathctl table2 [--size-mb N]         throughput rows
     kpathctl relay  [--datagrams N]       UDP relay comparison
     kpathctl graph  [--clients N] ...     splice-graph fan-out
     kpathctl prog   FILE                  verify + disassemble a filter program *)

open Cmdliner
open Kpath_kernel
open Kpath_workloads

let mb = 1024 * 1024

let disk_conv =
  let parse = function
    | "ram" -> Ok `Ram
    | "rz56" -> Ok `Rz56
    | "rz58" -> Ok `Rz58
    | s -> Error (`Msg (Printf.sprintf "unknown disk %S (ram|rz56|rz58)" s))
  in
  let print fmt d = Format.pp_print_string fmt (String.lowercase_ascii (Experiments.disk_name d)) in
  Arg.conv (parse, print)

let disk_arg =
  Arg.(value & opt disk_conv `Rz58 & info [ "disk" ] ~docv:"DISK" ~doc:"Disk model: ram, rz56 or rz58.")

let size_arg =
  Arg.(value & opt int 8 & info [ "size-mb" ] ~docv:"MB" ~doc:"File size in megabytes.")

let max_cluster_arg =
  Arg.(value
       & opt int Config.decstation_5000_200.Config.max_cluster
       & info [ "max-cluster" ] ~docv:"BLOCKS"
           ~doc:"Largest multi-block transfer the clustered I/O paths may \
                 build (1 = per-block I/O, the paper's original path).")

let engine_conv =
  let parse = function
    | "heap" -> Ok `Heap
    | "wheel" -> Ok `Wheel
    | s -> Error (`Msg (Printf.sprintf "unknown engine %S (heap|wheel)" s))
  in
  let print fmt e =
    Format.pp_print_string fmt
      (match e with `Heap -> "heap" | `Wheel -> "wheel")
  in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(value
       & opt engine_conv Config.decstation_5000_200.Config.sim_engine
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Event-queue backend: heap (binary heap) or wheel \
                 (hierarchical timing wheel). The simulation is identical \
                 either way; only host speed differs.")

let vm_backend_conv =
  let parse = function
    | "interp" -> Ok `Interp
    | "compiled" -> Ok `Compiled
    | "checked" -> Ok `Checked
    | s ->
      Error
        (`Msg
          (Printf.sprintf "unknown backend %S (interp|compiled|checked)" s))
  in
  let print fmt b =
    Format.pp_print_string fmt
      (match b with
       | `Interp -> "interp"
       | `Compiled -> "compiled"
       | `Checked -> "checked")
  in
  Arg.conv (parse, print)

let vm_backend_arg =
  Arg.(value
       & opt vm_backend_conv Config.decstation_5000_200.Config.vm_backend
       & info [ "vm-backend" ] ~docv:"BACKEND"
           ~doc:"Filter-program execution backend: compiled \
                 (closure-compiled at load time, the default), interp \
                 (the reference interpreter), or checked (compiled with \
                 the range analysis's check elision disabled). Verdicts, \
                 emits and simulated cost are identical in all three; \
                 only host wall-clock differs.")

let config_with_cluster max_cluster sim_engine =
  if max_cluster < 1 then begin
    Format.eprintf "kpathctl: --max-cluster must be at least 1@.";
    exit 124
  end;
  { Config.decstation_5000_200 with Config.max_cluster; sim_engine }

(* info *)

let info_cmd =
  let run () =
    Format.printf "%a@." Kpath_kernel.Config.pp
      Kpath_kernel.Config.decstation_5000_200;
    Format.printf
      "flow control: read watermark %d, write watermark %d, burst %d@."
      Kpath_core.Flowctl.default.Kpath_core.Flowctl.read_lo
      Kpath_core.Flowctl.default.Kpath_core.Flowctl.write_hi
      Kpath_core.Flowctl.default.Kpath_core.Flowctl.read_burst
  in
  Cmd.v (Cmd.info "info" ~doc:"Print the machine cost model.")
    Term.(const run $ const ())

(* copy *)

let copy_cmd =
  let mode_conv =
    let parse = function
      | "cp" -> Ok `Cp
      | "scp" -> Ok `Scp
      | "mcp" -> Ok `Mcp
      | s -> Error (`Msg (Printf.sprintf "unknown mode %S (cp|scp|mcp)" s))
    in
    Arg.conv
      ( parse,
        fun fmt m ->
          Format.pp_print_string fmt
            (match m with `Cp -> "cp" | `Scp -> "scp" | `Mcp -> "mcp") )
  in
  let mode_arg =
    Arg.(value & opt mode_conv `Scp
         & info [ "mode" ] ~docv:"MODE"
             ~doc:"cp (read/write), scp (splice) or mcp (memory-mapped).")
  in
  let same_disk_arg =
    Arg.(value & flag & info [ "same-disk" ] ~doc:"Source and destination on one drive.")
  in
  let watermarks_arg =
    Arg.(value & opt (some (t3 ~sep:',' int int int)) None
         & info [ "watermarks" ] ~docv:"LO,HI,BURST" ~doc:"splice flow-control watermarks.")
  in
  let trace_arg =
    Arg.(value & opt (some int) None
         & info [ "trace" ] ~docv:"N"
             ~doc:"Record splice events; print the last $(docv) afterwards.")
  in
  let run disk size_mb mode same_disk watermarks trace max_cluster engine =
    let config =
      Option.map
        (fun (lo, hi, burst) ->
          Kpath_core.Flowctl.make ~read_lo:lo ~write_hi:hi ~read_burst:burst)
        watermarks
    in
    let machine_config = config_with_cluster max_cluster engine in
    match trace with
    | None ->
      let m =
        Experiments.measure_copy ~mode ~disk ~file_bytes:(size_mb * mb)
          ~same_disk ~machine_config ?config ()
      in
      Format.printf "%s %d MB on %s%s: %.0f KB/s in %.2fs, verified=%b@."
        (match mode with `Cp -> "cp" | `Scp -> "scp" | `Mcp -> "mcp")
        size_mb
        (Experiments.disk_name disk)
        (if same_disk then " (same disk)" else "")
        m.Experiments.cm_kb_per_sec m.Experiments.cm_seconds
        m.Experiments.cm_verified
    | Some last_n ->
      (* Traced run: drive the setup by hand so the trace ring can be
         enabled before the copy starts. *)
      let s =
        Experiments.make_setup ~disk ~file_bytes:(size_mb * mb) ~same_disk
          ~machine_config ()
      in
      Experiments.cold_caches s;
      let machine = s.Experiments.machine in
      Kpath_sim.Trace.enable (Machine.trace machine) "splice";
      let stats = Programs.fresh_copy_stats () in
      let _copier =
        match mode with
        | `Cp ->
          Programs.spawn_cp machine ~src:s.Experiments.src_path
            ~dst:s.Experiments.dst_path stats
        | `Mcp ->
          Programs.spawn_mcp machine ~src:s.Experiments.src_path
            ~dst:s.Experiments.dst_path stats
        | `Scp ->
          Programs.spawn_scp machine ~src:s.Experiments.src_path
            ~dst:s.Experiments.dst_path ?config stats
      in
      Machine.run machine;
      let events = Kpath_sim.Trace.events (Machine.trace machine) in
      let skip = max 0 (List.length events - last_n) in
      List.iteri
        (fun i ev ->
          if i >= skip then
            Format.printf "%a@." Kpath_sim.Trace.pp_event ev)
        events;
      Format.printf "(%d events recorded, %d shown)@."
        (Kpath_sim.Trace.recorded (Machine.trace machine))
        (min last_n (List.length events));
      let h =
        Kpath_sim.Stats.histogram
          (Kpath_core.Splice.ctx_stats (Machine.splice_ctx machine))
          "splice.block_latency_us"
      in
      if Kpath_sim.Histogram.count h > 0 then
        Format.printf "block latency (us): %a@." Kpath_sim.Histogram.pp h
  in
  Cmd.v (Cmd.info "copy" ~doc:"Measure one cold file copy.")
    Term.(const run $ disk_arg $ size_arg $ mode_arg $ same_disk_arg
          $ watermarks_arg $ trace_arg $ max_cluster_arg $ engine_arg)

(* cluster *)

let cluster_cmd =
  let sizes_arg =
    Arg.(value & opt (list int) [ 1; 2; 4; 8; 16 ]
         & info [ "sizes" ] ~docv:"N,..."
             ~doc:"Cluster sizes to sweep (blocks per transfer).")
  in
  let run disk size_mb sizes =
    if List.exists (fun s -> s < 1) sizes then begin
      Format.eprintf "kpathctl: --sizes entries must be at least 1@.";
      exit 124
    end;
    List.iter
      (fun r ->
        Format.printf
          "%-5s cluster=%2d scp=%.0f KB/s intrs/MB=%.1f F_scp=%.3f@."
          (Experiments.disk_name r.Experiments.cl_disk)
          r.Experiments.cl_cluster r.Experiments.cl_scp_kbps
          r.Experiments.cl_intrs_per_mb r.Experiments.cl_f_scp)
      (Experiments.cluster_sweep ~disk ~file_bytes:(size_mb * mb) sizes)
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Sweep the clustered-I/O transfer size: splice throughput, \
             device interrupts per MB and CPU availability vs. cluster size \
             (the paper's s7 'larger transfer units' projection).")
    Term.(const run $ disk_arg $ size_arg $ sizes_arg)

(* table1 *)

let table1_cmd =
  let ops_arg =
    Arg.(value & opt int 2000 & info [ "ops" ] ~docv:"N" ~doc:"Test-program operations (1 ms each).")
  in
  let natural_arg =
    Arg.(value & flag & info [ "natural" ] ~doc:"Run copiers at device maximum instead of pacing to 1 MB/s.")
  in
  let run size_mb ops natural =
    let pace = if natural then None else Some 1.0e6 in
    List.iter
      (fun r ->
        Format.printf "%-5s F_cp=%.2f F_scp=%.2f I=%.2f (+%.0f%%)@."
          (Experiments.disk_name r.Experiments.av_disk)
          r.Experiments.av_f_cp r.Experiments.av_f_scp
          r.Experiments.av_improvement r.Experiments.av_pct)
      (Experiments.table1 ~file_bytes:(size_mb * mb) ~ops ~pace ())
  in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate Table 1 (CPU availability).")
    Term.(const run $ size_arg $ ops_arg $ natural_arg)

(* table2 *)

let table2_cmd =
  let run size_mb =
    List.iter
      (fun r ->
        Format.printf "%-5s scp=%.0f KB/s cp=%.0f KB/s (+%.0f%%)@."
          (Experiments.disk_name r.Experiments.tp_disk)
          r.Experiments.tp_scp_kbps r.Experiments.tp_cp_kbps
          r.Experiments.tp_pct_improvement)
      (Experiments.table2 ~file_bytes:(size_mb * mb) ())
  in
  Cmd.v (Cmd.info "table2" ~doc:"Regenerate Table 2 (throughput).")
    Term.(const run $ size_arg)

(* relay *)

let relay_cmd =
  let n_arg =
    Arg.(value & opt int 500 & info [ "datagrams" ] ~docv:"N" ~doc:"Datagrams to relay.")
  in
  let run n =
    List.iter
      (fun (name, mode) ->
        let r = Experiments.measure_relay ~mode ~datagrams:n () in
        Format.printf "%-8s: %d/%d delivered, %d dropped, CPU %.1f%%@." name
          r.Experiments.rm_datagrams n r.Experiments.rm_dropped
          (r.Experiments.rm_cpu_busy_frac *. 100.))
      [ ("process", `Process); ("splice", `Splice) ]
  in
  Cmd.v (Cmd.info "relay" ~doc:"Compare UDP relays: process vs splice.")
    Term.(const run $ n_arg)

(* media *)

let media_cmd =
  let load_arg =
    Arg.(value & opt int 0 & info [ "load" ] ~docv:"N" ~doc:"Competing compute-bound processes.")
  in
  let seconds_arg =
    Arg.(value & opt int 5 & info [ "seconds" ] ~docv:"S" ~doc:"Movie length in simulated seconds.")
  in
  let run load seconds =
    List.iter
      (fun (name, player) ->
        let r = Experiments.measure_media ~player ~load ~seconds () in
        Format.printf
          "%-8s: %d frames (%d late), %d underruns, %.1f fps, player CPU %.2fs@."
          name r.Experiments.md_frames r.Experiments.md_late_frames
          r.Experiments.md_audio_underruns r.Experiments.md_fps
          r.Experiments.md_player_cpu_sec)
      [ ("process", `Process); ("splice", `Splice) ]
  in
  Cmd.v
    (Cmd.info "media" ~doc:"Compare movie players: read/write vs splice (s4).")
    Term.(const run $ load_arg $ seconds_arg)

(* graph *)

let graph_cmd =
  let clients_arg =
    Arg.(value & opt int 8
         & info [ "clients" ] ~docv:"N" ~doc:"TCP clients fed from one disk pass.")
  in
  let size_kb_arg =
    Arg.(value & opt int 1024
         & info [ "size-kb" ] ~docv:"KB" ~doc:"File size in kilobytes.")
  in
  let bandwidth_arg =
    Arg.(value & opt float 40.0
         & info [ "bandwidth" ] ~docv:"MBPS" ~doc:"Network segment bandwidth, MB/s.")
  in
  let window_arg =
    Arg.(value & opt (some int) None
         & info [ "window" ] ~docv:"BLOCKS"
             ~doc:"Per-source cap on blocks simultaneously held (pending reads + aliased buffers).")
  in
  let throttle_arg =
    Arg.(value & opt (some float) None
         & info [ "throttle" ] ~docv:"BPS"
             ~doc:"Pace every edge to this rate in bytes/second (a Throttle filter).")
  in
  let checksum_arg =
    Arg.(value & flag
         & info [ "checksum" ] ~doc:"Run a Checksum filter stage on every edge.")
  in
  let prog_arg =
    Arg.(value & opt (some string) None
         & info [ "prog" ] ~docv:"FILE"
             ~doc:"Attach the filter program assembled from $(docv) to every \
                   edge. The program must pass the in-kernel verifier; a \
                   rejection prints the violated rule and instruction offset.")
  in
  let trace_arg =
    Arg.(value & opt (some string) None
         & info [ "trace-json" ] ~docv:"FILE"
             ~doc:"Dump the per-block graph event log to $(docv), one JSON object per line.")
  in
  let domains_arg =
    Arg.(value & opt (some int) None
         & info [ "domains" ] ~docv:"K"
             ~doc:"Run the memory-lean sharded fan-out instead of the splice \
                   graph: clients are partitioned over $(docv) OCaml domains \
                   (independent sub-simulations, deterministically merged). \
                   Results are bit-identical for every $(docv). Incompatible \
                   with filter and trace options.")
  in
  let run clients size_kb bandwidth window throttle checksum prog trace domains
      engine vm_backend =
    let usage_error msg =
      Format.eprintf "kpathctl: %s@." msg;
      exit 124
    in
    if clients < 1 then usage_error "--clients must be at least 1";
    if size_kb < 1 then usage_error "--size-kb must be at least 1";
    if bandwidth <= 0.0 then usage_error "--bandwidth must be positive";
    (match throttle with
     | Some bps when bps <= 0.0 -> usage_error "--throttle must be positive"
     | _ -> ());
    (match window with
     | Some w when w < 1 -> usage_error "--window must be at least 1"
     | _ -> ());
    let prog_filter =
      match prog with
      | None -> []
      | Some path ->
        let text =
          try
            let ic = open_in_bin path in
            let n = in_channel_length ic in
            let s = really_input_string ic n in
            close_in ic;
            s
          with Sys_error msg -> usage_error ("cannot read program: " ^ msg)
        in
        (match Kpath_vm.Asm.load text with
         | Ok p -> [ Kpath_graph.Graph.Prog p ]
         | Error diag -> usage_error (Printf.sprintf "%s: %s" path diag))
    in
    let filters =
      (if checksum then [ Kpath_graph.Graph.Checksum ] else [])
      @ (match throttle with
         | Some bps -> [ Kpath_graph.Graph.Throttle bps ]
         | None -> [])
      @ prog_filter
    in
    let filters = if filters = [] then None else Some filters in
    let machine_config =
      { Config.decstation_5000_200 with Config.sim_engine = engine; vm_backend }
    in
    (match domains with
     | Some k ->
       if k < 1 then usage_error "--domains must be at least 1";
       if Option.is_some filters || Option.is_some window || Option.is_some trace
       then
         usage_error
           "--domains is incompatible with filter, window and trace options";
       let machine_config = { machine_config with Config.sim_domains = k } in
       let r =
         Experiments.measure_fanout_sharded ~clients
           ~file_bytes:(size_kb * 1024) ~bandwidth:(bandwidth *. 1e6)
           ~machine_config ()
       in
       Format.printf
         "fan-out %d KB x %d clients over %d domain%s: %.0f KB/s aggregate in \
          %.2fs, %d events, server CPU %.2fs, verified=%b, digest=%016x@."
         size_kb r.Experiments.fsh_clients r.Experiments.fsh_domains
         (if r.Experiments.fsh_domains = 1 then "" else "s")
         r.Experiments.fsh_agg_kb_per_sec r.Experiments.fsh_seconds
         r.Experiments.fsh_events r.Experiments.fsh_server_cpu_sec
         r.Experiments.fsh_verified r.Experiments.fsh_digest;
       exit (if r.Experiments.fsh_verified then 0 else 1)
     | None -> ());
    let measure trace_json =
      Experiments.measure_fanout ~clients ~file_bytes:(size_kb * 1024)
        ~bandwidth:(bandwidth *. 1e6) ?filters ?window ?trace_json
        ~machine_config ()
    in
    let r =
      match trace with
      | None -> measure None
      | Some path ->
        let oc =
          try open_out path
          with Sys_error msg -> usage_error ("cannot open trace file: " ^ msg)
        in
        let fmt = Format.formatter_of_out_channel oc in
        let r = measure (Some fmt) in
        Format.pp_print_flush fmt ();
        close_out oc;
        r
    in
    Format.printf
      "fan-out %d KB x %d clients: %.0f KB/s aggregate in %.2fs, %d device \
       reads (one disk pass), server CPU %.2fs, verified=%b@."
      size_kb r.Experiments.fo_clients r.Experiments.fo_agg_kb_per_sec
      r.Experiments.fo_seconds r.Experiments.fo_device_reads
      r.Experiments.fo_server_cpu_sec r.Experiments.fo_verified;
    if Option.is_some prog then
      Format.printf "filter program: %d runs, %d instructions executed (%s \
                     backend)@."
        r.Experiments.fo_prog_runs r.Experiments.fo_prog_insns
        (match vm_backend with
         | `Interp -> "interp"
         | `Compiled -> "compiled"
         | `Checked -> "checked");
    if r.Experiments.fo_pinned_after <> 0 then
      Format.printf "WARNING: %d buffers still pinned after completion@."
        r.Experiments.fo_pinned_after
  in
  Cmd.v
    (Cmd.info "graph"
       ~doc:"Stream one file to N TCP clients through a splice graph (fan-out).")
    Term.(const run $ clients_arg $ size_kb_arg $ bandwidth_arg $ window_arg
          $ throttle_arg $ checksum_arg $ prog_arg $ trace_arg $ domains_arg
          $ engine_arg $ vm_backend_arg)

(* prog *)

let prog_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE"
             ~doc:"Filter program source to verify and disassemble.")
  in
  let run path =
    let fail fmt =
      Format.kasprintf
        (fun msg ->
          Format.eprintf "kpathctl: %s@." msg;
          exit 124)
        fmt
    in
    let text =
      try
        let ic = open_in_bin path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      with Sys_error msg -> fail "cannot read program: %s" msg
    in
    match Kpath_vm.Asm.load text with
    | Error diag -> fail "%s: %s" path diag
    | Ok p ->
      let insns = Kpath_vm.Vm.insns p in
      let code = Kpath_vm.Compile.compile p in
      let bs = Kpath_vm.Compile.blocks code in
      Format.printf "%s: verified, context %s@." path
        (match Kpath_vm.Vm.prog_context p with
         | Kpath_vm.Vm.Edge -> "edge"
         | Kpath_vm.Vm.Readonly -> "readonly");
      Format.printf
        "%d instructions, worst_cost %d <= fuel %d, scratch %d cells, %d \
         basic blocks@."
        (Array.length insns)
        (Kpath_vm.Vm.worst_cost p)
        (Kpath_vm.Vm.fuel p)
        (Kpath_vm.Vm.scratch_cells p)
        (Array.length bs);
      let accesses = Kpath_vm.Vm.accesses p in
      let proven =
        List.length
          (List.filter
             (fun a ->
               match a.Kpath_vm.Vm.a_bounds with
               | `Proven -> true
               | `Checked -> false)
             accesses)
      in
      Format.printf
        "range analysis: %d faultable sites, %d proven (checks elided)@."
        (List.length accesses) proven;
      let tiers = Kpath_vm.Compile.block_tiers code in
      Array.iteri
        (fun b { Kpath_vm.Compile.bb_first; bb_last } ->
          Format.printf "b%d: [%s]@." b tiers.(b);
          for pc = bb_first to bb_last do
            let note =
              match
                List.find_opt (fun a -> a.Kpath_vm.Vm.a_pc = pc) accesses
              with
              | None -> ""
              | Some a ->
                Format.sprintf "  ; %s %s, %s"
                  (match a.Kpath_vm.Vm.a_kind with
                   | `Load -> "load"
                   | `Store -> "store"
                   | `Div -> "div")
                  (match a.Kpath_vm.Vm.a_bounds with
                   | `Proven -> "proven"
                   | `Checked -> "checked")
                  a.Kpath_vm.Vm.a_range
            in
            Format.printf "  %4d: %s%s@." pc
              (Kpath_vm.Asm.insn_to_string ~pc insns.(pc))
              note
          done)
        bs
  in
  Cmd.v
    (Cmd.info "prog"
       ~doc:"Verify and disassemble a filter program without running it: \
             static cost against its fuel budget, scratch footprint, the \
             basic-block structure the closure compiler found, per block \
             the compilation tier that fired (named loop idiom, fused \
             loop, superinstructions, or plain chained closures), and the \
             range analysis's verdict at every faultable site — the \
             offset interval and whether the runtime check was proven \
             away — so a slow program is diagnosable without reading the \
             compiler. A rejected program prints the violated rule and \
             instruction offset and exits 124, exactly as graph --prog \
             would.")
    Term.(const run $ file_arg)

(* sendfile *)

let sendfile_cmd =
  let loss_arg =
    Arg.(value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"Frame loss probability (0-0.9).")
  in
  let run size_mb loss =
    List.iter
      (fun (name, mode) ->
        let r =
          Experiments.measure_sendfile ~mode ~file_bytes:(size_mb * mb) ~loss ()
        in
        Format.printf
          "%-9s: verified=%b %.0f KB/s server-cpu %.2fs retransmits %d@." name
          r.Experiments.sf_verified r.Experiments.sf_kb_per_sec
          r.Experiments.sf_server_cpu_sec r.Experiments.sf_retransmits)
      [ ("readwrite", `ReadWrite); ("sendfile", `Sendfile) ]
  in
  Cmd.v
    (Cmd.info "sendfile" ~doc:"Serve a file over TCP: read/write vs splice.")
    Term.(const run $ size_arg $ loss_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "kpathctl" ~version:"1.0.0"
      ~doc:"Drive the kpath in-kernel data path simulator."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ info_cmd; copy_cmd; cluster_cmd; table1_cmd; table2_cmd; relay_cmd;
            media_cmd; graph_cmd; prog_cmd; sendfile_cmd ]))
