open Kpath_dev
open Kpath_fs
open Kpath_net

type source =
  | Src_file of { fs : Fs.t; ino : Inode.t; off_blocks : int }
  | Src_socket of Udp.t
  | Src_framebuffer of Framebuffer.t
  | Src_mic of Micdev.t

type sink =
  | Dst_file of { fs : Fs.t; ino : Inode.t; off_blocks : int }
  | Dst_socket of { sock : Udp.t; dst : Udp.addr }
  | Dst_tcp of Tcp.conn
  | Dst_chardev of Chardev.t

let src_file fs ino ?(off_blocks = 0) () =
  if off_blocks < 0 then invalid_arg "Endpoint.src_file: negative offset";
  Src_file { fs; ino; off_blocks }

let dst_file fs ino ?(off_blocks = 0) () =
  if off_blocks < 0 then invalid_arg "Endpoint.dst_file: negative offset";
  Dst_file { fs; ino; off_blocks }

let describe_source = function
  | Src_file { ino; _ } -> Printf.sprintf "file(ino%d)" ino.Inode.ino
  | Src_socket sock ->
    let a = Udp.addr sock in
    Printf.sprintf "udp(%d:%d)" a.Udp.a_if a.Udp.a_port
  | Src_framebuffer fb -> Printf.sprintf "framebuffer(%dB)" (Framebuffer.frame_bytes fb)
  | Src_mic mic -> Printf.sprintf "mic(%s)" (Micdev.name mic)

let describe_sink = function
  | Dst_file { ino; _ } -> Printf.sprintf "file(ino%d)" ino.Inode.ino
  | Dst_socket { dst; _ } -> Printf.sprintf "udp(->%d:%d)" dst.Udp.a_if dst.Udp.a_port
  | Dst_tcp conn ->
    let a = Tcp.remote_addr conn in
    Printf.sprintf "tcp(->%d:%d)" a.Tcp.a_if a.Tcp.a_port
  | Dst_chardev cd -> Printf.sprintf "chardev(%s)" (Chardev.name cd)
