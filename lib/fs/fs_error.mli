(** Filesystem errors.

    The error vocabulary shared by the filesystem layers, deliberately
    shaped like the UNIX errnos the syscall layer translates them to. *)

type t =
  | Enoent  (** no such file or directory *)
  | Eexist  (** name already exists *)
  | Enospc  (** out of data blocks or inodes *)
  | Enotdir  (** path component is not a directory *)
  | Eisdir  (** directory where a file was expected *)
  | Enotempty  (** directory not empty *)
  | Enametoolong  (** name exceeds the on-disk limit *)
  | Efbig  (** file would exceed the maximum mappable size *)
  | Einval of string  (** malformed argument *)
  | Eio of string  (** device-level I/O failure *)

exception Error of t
(** Raised by filesystem operations. *)

val raise_err : t -> 'a
(** [raise_err e] raises [Error e]. *)

val to_string : t -> string
(** errno-style rendering, e.g. ["ENOENT"]. *)

val pp : Format.formatter -> t -> unit
