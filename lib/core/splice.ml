open Kpath_sim
open Kpath_dev
open Kpath_buf
open Kpath_fs
open Kpath_net
open Kpath_proc

type ctx = {
  engine : Engine.t;
  callout : Callout.t;
  cache : Cache.t;
  intr : service:Time.span -> (unit -> unit) -> unit;
  handler_cost : Time.span;
  stats : Stats.t;
  trace : Trace.t option;
  mutable next_id : int;
}

let make_ctx ~engine ~callout ~cache ~intr ?(handler_cost = Time.us 25) ?trace
    () =
  {
    engine;
    callout;
    cache;
    intr;
    handler_cost;
    stats = Stats.create ();
    trace;
    next_id = 1;
  }

let tr ctx msg =
  match ctx.trace with
  | Some t -> Trace.emit t ~cat:"splice" msg
  | None -> ()

let ctx_stats ctx = ctx.stats

type state = Running | Completed | Aborted of string

let eof = -1

(* File-source pump state: the splice descriptor proper (§5.2). *)
type file_pump = {
  src_fs : Fs.t;
  src_map : int array;  (* physical block table, built by bmap *)
  fp_sink : file_sink;
  nblocks : int;
  mutable next_read : int;  (* next logical block to read *)
  mutable fp_reads : int;  (* pending read requests (clusters) *)
  mutable fp_writes : int;  (* pending write requests (clusters) *)
  mutable peak_reads : int;
  mutable peak_writes : int;
  inflight : (int, Buf.t) Hashtbl.t;  (* lblk -> source buffer *)
  issue_times : (int, Time.t) Hashtbl.t;  (* lblk -> read issue instant *)
  mutable retry_armed : bool;  (* a buffer-shortage retry is scheduled *)
  (* Clustered write staging (file sinks, max_cluster > 1): completed
     source blocks accumulate here; one callout drains the batch,
     coalescing destination-contiguous runs into single writes. *)
  mutable wq : (int * Buf.t) list;
  mutable wflush_armed : bool;
  (* Cluster slow start (4.3BSD cluster read-ahead ramp): run sizes grow
     1, 2, 4, ... up to max_cluster as sequential progress is made, so
     the first byte arrives with single-block latency instead of after a
     full cluster's media time. *)
  mutable ramp : int;
}

and file_sink =
  | To_file of { dst_fs : Fs.t; dst_map : int array }
  | To_chardev of Chardev.t
  | To_socket of { sock : Udp.t; dst : Udp.addr }
  | To_tcp of Tcp.conn

type dgram_pump = {
  dg_src : Udp.t;
  dg_sink : [ `Socket of Udp.t * Udp.addr | `Chardev of Chardev.t ];
  mutable dg_drops : int;
}

type frame_pump = { fr_src : Framebuffer.t; fr_sock : Udp.t; fr_dst : Udp.addr; fr_mtu : int }

(* Recording: an input character device streams into a file. The
   destination blocks are preallocated at setup (process context, may
   sleep); the interrupt-context upcall only stages bytes and issues
   asynchronous writes through bare headers, dropping input (an
   overrun) when too many writes are already in flight. *)
type stream_pump = {
  sp_fs : Fs.t;
  sp_map : int array;
  mutable sp_next : int; (* destination block being staged *)
  mutable staged : Bytes.t;
  mutable staged_len : int;
  mutable sp_writes : int;
  mutable sp_overruns : int; (* bytes dropped on overrun *)
  sp_mic : Micdev.t;
}

type kind =
  | File_pump of file_pump
  | Dgram_pump of dgram_pump
  | Frame_pump of frame_pump
  | Stream_pump of stream_pump

type t = {
  sd_id : int;
  ctx : ctx;
  config : Flowctl.config;
  total : int;
  block_size : int;
  mutable moved : int;
  mutable st : state;
  mutable callbacks : (t -> unit) list;
  mutable finalized : bool;
  kind : kind;
}

let id t = t.sd_id

let state t = t.st

let bytes_moved t = t.moved

let total_bytes t = t.total

let pending_reads t =
  match t.kind with
  | File_pump p -> p.fp_reads
  | Dgram_pump _ | Frame_pump _ | Stream_pump _ -> 0

let pending_writes t =
  match t.kind with
  | File_pump p -> p.fp_writes
  | Stream_pump p -> p.sp_writes
  | Dgram_pump _ | Frame_pump _ -> 0

let peak_pending_reads t =
  match t.kind with
  | File_pump p -> p.peak_reads
  | Dgram_pump _ | Frame_pump _ | Stream_pump _ -> 0

let peak_pending_writes t =
  match t.kind with
  | File_pump p -> p.peak_writes
  | Dgram_pump _ | Frame_pump _ | Stream_pump _ -> 0

let inflight_buffers t =
  match t.kind with
  | File_pump p ->
    Hashtbl.fold (fun _ b acc -> b :: acc) p.inflight []
    |> List.sort (fun (a : Buf.t) (b : Buf.t) ->
           compare a.Buf.b_lblkno b.Buf.b_lblkno)
  | Dgram_pump _ | Frame_pump _ | Stream_pump _ -> []

let overruns t =
  match t.kind with
  | Stream_pump p -> p.sp_overruns
  | File_pump _ | Dgram_pump _ | Frame_pump _ -> 0

let count ctx name = Stats.incr (Stats.counter ctx.stats name)

(* Charge one handler activation to the CPU (interrupt bucket). *)
let charge t = t.ctx.intr ~service:t.ctx.handler_cost (fun () -> ())

let release_source t =
  match t.kind with
  | Dgram_pump p -> Udp.set_upcall p.dg_src None
  | Stream_pump p -> Micdev.set_consumer p.sp_mic None
  | File_pump _ | Frame_pump _ -> ()

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    tr t.ctx (fun () ->
        Printf.sprintf "sd%d %s (%d bytes moved)" t.sd_id
          (match t.st with
           | Completed -> "completed"
           | Aborted r -> "aborted: " ^ r
           | Running -> "finalized while running!?")
          t.moved);
    release_source t;
    count t.ctx
      (match t.st with
       | Completed -> "splice.completed"
       | Aborted _ -> "splice.aborted"
       | Running -> assert false);
    let cbs = List.rev t.callbacks in
    t.callbacks <- [];
    List.iter (fun cb -> cb t) cbs
  end

let on_complete t cb =
  if t.finalized then cb t else t.callbacks <- cb :: t.callbacks

let[@kpath.blocks] wait t =
  let finished () = t.st <> Running in
  if not (finished ()) then
    Process.block "splice" (fun waker -> on_complete t (fun _ -> waker ()));
  (* The callback fires at finalize, after the state settles. *)
  match t.st with
  | Completed -> Ok t.moved
  | Aborted reason -> Error reason
  | Running -> assert false

(* Bytes carried by logical block [lblk] (the final block may be
   partial). *)
let bytes_for t lblk = min t.block_size (t.total - (lblk * t.block_size))

(* {1 File pump} *)

let drained p = p.fp_reads = 0 && p.fp_writes = 0 && p.wq = []

let complete_if_done t (p : file_pump) =
  match t.st with
  | Running ->
    if t.moved >= t.total then begin
      t.st <- Completed;
      finalize t
    end
  | Aborted _ -> if drained p then finalize t
  | Completed -> ()

let src_dev p = Fs.dev p.src_fs

(* Staging insert keeping [wq] sorted by descending lblk: completions
   almost always arrive in ascending order, so the common case is an
   O(1) cons; the rare out-of-order completion walks to its slot. The
   flush then just reverses — no per-flush sort. *)
let wq_insert (p : file_pump) lblk b =
  match p.wq with
  | [] -> p.wq <- [ (lblk, b) ]
  | (l, _) :: _ when l < lblk -> p.wq <- (lblk, b) :: p.wq
  | _ ->
    let rec ins = function
      | ((l, _) as hd) :: tl when l > lblk -> hd :: ins tl
      | rest -> (lblk, b) :: rest
    in
    p.wq <- ins p.wq

let[@kpath.intr] rec issue_reads t (p : file_pump) n =
  if n > 0 && t.st = Running && p.next_read < p.nblocks then begin
    let lblk = p.next_read in
    let phys = p.src_map.(lblk) in
    (* Cluster sizing: how many of the coming blocks are physically
       contiguous on the source, capped by the cache's cluster bound.
       Flow control counts requests, not blocks — a cluster occupies one
       watermark slot, like one disksort entry in the BSD driver. With
       max_cluster = 1 the run is always 1 and [Cache.breadn]
       degenerates to the per-block [bread_nb]. *)
    let run =
      let cap =
        min p.ramp (min (Cache.max_cluster t.ctx.cache) (p.nblocks - lblk))
      in
      let rec grow i =
        if i < cap && p.src_map.(lblk + i) = phys + i then grow (i + 1) else i
      in
      grow 1
    in
    p.ramp <- min (Cache.max_cluster t.ctx.cache) (p.ramp * 2);
    (* One handler activation per cluster completion: the member fan-out
       runs back-to-back in one event, so only the first member pays the
       callout cost — the interrupt-coalescing credit of §7 — and
       retires the request's watermark slot. *)
    let first = ref true in
    match
      Cache.breadn t.ctx.cache (src_dev p) phys ~n:run ~iodone:(fun b ->
          if !first then begin
            first := false;
            p.fp_reads <- p.fp_reads - 1;
            charge t
          end;
          read_done t p b.Buf.b_lblkno b)
    with
    | `Busy ->
      (* Out of clean buffers: try again on the next clock tick. *)
      count t.ctx "splice.retries";
      if not p.retry_armed then begin
        p.retry_armed <- true;
        ignore
          (Callout.timeout t.ctx.callout ~ticks:1 (fun () ->
               p.retry_armed <- false;
               let burst =
                 Flowctl.reads_to_issue t.config ~pending_reads:p.fp_reads
                   ~pending_writes:p.fp_writes
               in
               issue_reads t p (max 1 burst)))
      end
    | `Hit b ->
      p.next_read <- lblk + 1;
      p.fp_reads <- p.fp_reads + 1;
      p.peak_reads <- max p.peak_reads p.fp_reads;
      b.Buf.b_splice <- t.sd_id;
      b.Buf.b_lblkno <- lblk;
      count t.ctx "splice.read_hits";
      Hashtbl.replace p.issue_times lblk (Engine.now t.ctx.engine);
      charge t;
      p.fp_reads <- p.fp_reads - 1;
      read_done t p lblk b;
      issue_reads t p (n - 1)
    | `Started members ->
      let k = List.length members in
      List.iteri
        (fun i (b : Buf.t) ->
          b.Buf.b_splice <- t.sd_id;
          b.Buf.b_lblkno <- lblk + i;
          count t.ctx "splice.reads_issued";
          Hashtbl.replace p.issue_times (lblk + i) (Engine.now t.ctx.engine))
        members;
      p.next_read <- lblk + k;
      p.fp_reads <- p.fp_reads + 1;
      p.peak_reads <- max p.peak_reads p.fp_reads;
      if k > 1 then count t.ctx "splice.cluster_reads";
      tr t.ctx (fun () ->
          if k = 1 then
            Printf.sprintf "sd%d read lblk %d -> phys %d (pending r=%d w=%d)"
              t.sd_id lblk phys p.fp_reads p.fp_writes
          else
            Printf.sprintf
              "sd%d clustered read lblk %d..%d -> phys %d (pending r=%d w=%d)"
              t.sd_id lblk (lblk + k - 1) phys p.fp_reads p.fp_writes);
      issue_reads t p (n - 1)
  end

(* Read handler: invoked at read completion (interrupt context; the
   caller charges the handler activation and retires the pending-read
   slot — once per cluster). Hands the locked buffer to the write side
   through the head of the callout list (§5.3). *)
and[@kpath.intr] read_done t (p : file_pump) lblk (b : Buf.t) =
  match t.st with
  | Aborted _ ->
    Cache.brelse t.ctx.cache b;
    complete_if_done t p
  | Completed -> assert false
  | Running ->
    if Buf.has b Buf.b_error_flag then begin
      let reason =
        match b.Buf.b_error with
        | Some (Blkdev.Io_error m) -> m
        | None -> "read error"
      in
      Cache.brelse t.ctx.cache b;
      abort_pump t p reason
    end
    else begin
      Hashtbl.replace p.inflight lblk b;
      tr t.ctx (fun () ->
          Printf.sprintf "sd%d read done lblk %d; write via callout head"
            t.sd_id lblk);
      match p.fp_sink with
      | To_file _ when Cache.max_cluster t.ctx.cache > 1 ->
        (* Clustered write staging: batch the blocks completing in this
           event; one callout drains them, coalescing dst-contiguous
           runs into single writes. The pending-write slot is taken when
           a run is issued, one per write request. *)
        wq_insert p lblk b;
        if not p.wflush_armed then begin
          p.wflush_armed <- true;
          ignore
            (Callout.schedule_head t.ctx.callout (fun () -> flush_writes t p))
        end
      | _ ->
        p.fp_writes <- p.fp_writes + 1;
        p.peak_writes <- max p.peak_writes p.fp_writes;
        ignore
          (Callout.schedule_head t.ctx.callout (fun () ->
               write_start t p lblk b))
    end

(* Drain the clustered-write staging batch: runs that are consecutive
   both logically and on the destination device (split at physical
   discontinuities) become one multi-block write each. *)
and[@kpath.intr] flush_writes t (p : file_pump) =
  p.wflush_armed <- false;
  (* [wq] is kept sorted descending by [wq_insert]. *)
  let batch = List.rev p.wq in
  p.wq <- [];
  let dst_map =
    match p.fp_sink with To_file { dst_map; _ } -> dst_map | _ -> assert false
  in
  let mc = Cache.max_cluster t.ctx.cache in
  let rec go = function
    | [] -> ()
    | ((lblk, _) as hd) :: rest ->
      let rec grab acc k prev rest =
        match rest with
        | ((l, _) as e) :: tl
          when k < mc && l = prev + 1 && dst_map.(l) = dst_map.(prev) + 1 ->
          grab (e :: acc) (k + 1) l tl
        | _ -> (List.rev acc, rest)
      in
      let run, rest = grab [ hd ] 1 lblk rest in
      p.fp_writes <- p.fp_writes + 1;
      p.peak_writes <- max p.peak_writes p.fp_writes;
      (match run with
       | [ (l, b) ] -> write_start t p l b
       | _ -> write_cluster t p run);
      go rest
  in
  go batch

(* Clustered write: the members' data areas ride one header transfer
   (the splice analog of cluster_wbuild), so the destination device
   raises a single completion interrupt for the run. *)
and[@kpath.intr] write_cluster t (p : file_pump) run =
  charge t;
  if t.st <> Running then begin
    p.fp_writes <- p.fp_writes - 1;
    List.iter
      (fun (lblk, _) ->
        match Hashtbl.find_opt p.inflight lblk with
        | Some src_buf ->
          Hashtbl.remove p.inflight lblk;
          Cache.brelse t.ctx.cache src_buf
        | None -> ())
      run;
    complete_if_done t p
  end
  else
    match p.fp_sink with
    | To_file { dst_fs; dst_map } ->
      let lblk0 = fst (List.hd run) in
      let k = List.length run in
      let hdr = Cache.getblk_hdr t.ctx.cache (Fs.dev dst_fs) dst_map.(lblk0) in
      hdr.Buf.b_data <-
        Bytes.concat Bytes.empty
          (List.map (fun (_, (b : Buf.t)) -> b.Buf.b_data) run);
      hdr.Buf.b_bcount <- k * t.block_size;
      hdr.Buf.b_lblkno <- lblk0;
      hdr.Buf.b_splice <- t.sd_id;
      List.iter (fun _ -> count t.ctx "splice.writes_issued") run;
      count t.ctx "splice.cluster_writes";
      tr t.ctx (fun () ->
          Printf.sprintf "sd%d clustered write lblk %d..%d -> phys %d" t.sd_id
            lblk0 (lblk0 + k - 1) dst_map.(lblk0));
      Cache.awrite_call t.ctx.cache hdr ~iodone:(fun hb ->
          cluster_write_done t p run (Some hb))
    | To_chardev _ | To_socket _ | To_tcp _ -> assert false

(* Completion of a clustered write: one handler activation, then
   per-block accounting (bytes moved, latency samples) and a single
   flow-control step for the whole run. *)
and[@kpath.intr] cluster_write_done t (p : file_pump) run hdr =
  charge t;
  let write_error =
    match hdr with
    | Some (hb : Buf.t) ->
      let e =
        if Buf.has hb Buf.b_error_flag then
          match hb.Buf.b_error with
          | Some (Blkdev.Io_error m) -> Some m
          | None -> Some "write error"
        else None
      in
      Cache.release_hdr t.ctx.cache hb;
      e
    | None -> None
  in
  p.fp_writes <- p.fp_writes - 1;
  List.iter
    (fun (lblk, _) ->
      match Hashtbl.find_opt p.inflight lblk with
      | Some src_buf ->
        Hashtbl.remove p.inflight lblk;
        Cache.brelse t.ctx.cache src_buf
      | None -> ())
    run;
  match (t.st, write_error) with
  | Running, Some reason -> abort_pump t p reason
  | Running, None ->
    List.iter
      (fun (lblk, _) ->
        t.moved <- t.moved + bytes_for t lblk;
        match Hashtbl.find_opt p.issue_times lblk with
        | Some issued ->
          Hashtbl.remove p.issue_times lblk;
          Histogram.add
            (Stats.histogram t.ctx.stats "splice.block_latency_us")
            (int_of_float
               (Time.to_us_f (Time.diff (Engine.now t.ctx.engine) issued)))
        | None -> ())
      run;
    tr t.ctx (fun () ->
        Printf.sprintf "sd%d clustered write done lblk %d..%d (%d/%d bytes)"
          t.sd_id (fst (List.hd run))
          (fst (List.hd run) + List.length run - 1)
          t.moved t.total);
    if t.moved >= t.total then complete_if_done t p
    else begin
      let burst =
        Flowctl.reads_to_issue t.config ~pending_reads:p.fp_reads
          ~pending_writes:p.fp_writes
      in
      issue_reads t p burst;
      if drained p && p.next_read < p.nblocks then issue_reads t p 1
    end
  | (Aborted _ | Completed), _ -> complete_if_done t p

(* Write side: runs from the callout list with a locked buffer of valid
   data (§5.4). *)
and[@kpath.intr] write_start t (p : file_pump) lblk (src_buf : Buf.t) =
  charge t;
  if t.st <> Running then write_done t p lblk None
  else
    match p.fp_sink with
    | To_file { dst_fs; dst_map } ->
      let hdr = Cache.getblk_hdr t.ctx.cache (Fs.dev dst_fs) dst_map.(lblk) in
      (* Share the data area with the read-side buffer: no copy. *)
      hdr.Buf.b_data <- src_buf.Buf.b_data;
      hdr.Buf.b_bcount <- t.block_size;
      hdr.Buf.b_lblkno <- lblk;
      hdr.Buf.b_splice <- t.sd_id;
      count t.ctx "splice.writes_issued";
      Cache.awrite_call t.ctx.cache hdr ~iodone:(fun hb ->
          write_done t p lblk (Some hb))
    | To_chardev cd ->
      count t.ctx "splice.writes_issued";
      Chardev.write_async cd src_buf.Buf.b_data 0 (bytes_for t lblk) (fun () ->
          write_done t p lblk None)
    | To_socket { sock; dst } ->
      (* Datagram per block; the payload references the cache buffer's
         bytes via an mbuf-style loan (no CPU copy is charged). *)
      count t.ctx "splice.writes_issued";
      let payload = Bytes.sub src_buf.Buf.b_data 0 (bytes_for t lblk) in
      Udp.sendto sock ~dst payload;
      write_done t p lblk None
    | To_tcp conn ->
      (* The stream applies back-pressure: completion fires when the
         block has been accepted into the send buffer, i.e. when the
         peer's window has admitted it. *)
      count t.ctx "splice.writes_issued";
      (try
         Tcp.send_async conn src_buf.Buf.b_data ~pos:0 ~len:(bytes_for t lblk)
           (fun () -> write_done t p lblk None)
       with Invalid_argument msg ->
         p.fp_writes <- p.fp_writes - 1;
         Hashtbl.remove p.inflight lblk;
         Cache.brelse t.ctx.cache src_buf;
         abort_pump t p ("tcp sink: " ^ msg))

(* Write handler: invoked at write completion (§5.4): free the source
   buffer, free the header just written, account, and apply flow control
   (§5.5). *)
and[@kpath.intr] write_done t (p : file_pump) lblk hdr =
  charge t;
  p.fp_writes <- p.fp_writes - 1;
  let write_error =
    match hdr with
    | Some (hb : Buf.t) ->
      let e =
        if Buf.has hb Buf.b_error_flag then
          match hb.Buf.b_error with
          | Some (Blkdev.Io_error m) -> Some m
          | None -> Some "write error"
        else None
      in
      Cache.release_hdr t.ctx.cache hb;
      e
    | None -> None
  in
  (match Hashtbl.find_opt p.inflight lblk with
   | Some src_buf ->
     Hashtbl.remove p.inflight lblk;
     Cache.brelse t.ctx.cache src_buf
   | None -> ());
  match (t.st, write_error) with
  | Running, Some reason -> abort_pump t p reason
  | Running, None ->
    t.moved <- t.moved + bytes_for t lblk;
    (match Hashtbl.find_opt p.issue_times lblk with
     | Some issued ->
       Hashtbl.remove p.issue_times lblk;
       Histogram.add
         (Stats.histogram t.ctx.stats "splice.block_latency_us")
         (int_of_float (Time.to_us_f (Time.diff (Engine.now t.ctx.engine) issued)))
     | None -> ());
    tr t.ctx (fun () ->
        Printf.sprintf "sd%d write done lblk %d (%d/%d bytes)" t.sd_id lblk
          t.moved t.total);
    if t.moved >= t.total then complete_if_done t p
    else begin
      let burst =
        Flowctl.reads_to_issue t.config ~pending_reads:p.fp_reads
          ~pending_writes:p.fp_writes
      in
      issue_reads t p burst;
      (* Belt and braces: if nothing is in flight and nothing was
         issued, restart one read so the transfer cannot stall. *)
      if drained p && p.next_read < p.nblocks then issue_reads t p 1
    end
  | (Aborted _ | Completed), _ -> complete_if_done t p

and[@kpath.intr] abort_pump t (p : file_pump) reason =
  if t.st = Running then begin
    t.st <- Aborted reason;
    complete_if_done t p
  end

let abort t ~reason =
  match t.st with
  | Running -> (
    match t.kind with
    | File_pump p -> abort_pump t p reason
    | Stream_pump p ->
      t.st <- Aborted reason;
      if p.sp_writes = 0 then finalize t
    | Dgram_pump _ | Frame_pump _ ->
      t.st <- Aborted reason;
      finalize t)
  | Completed | Aborted _ -> ()

let release t =
  if t.st <> Running then release_source t
  else invalid_arg "Splice.release: still running"

(* {1 Setup} *)

let resolve_file_size (ino : Inode.t) ~off_blocks ~block_size ~size =
  let avail = ino.Inode.size - (off_blocks * block_size) in
  if size = eof then max 0 avail
  else if size < 0 then invalid_arg "Splice.start: negative size"
  else min size (max 0 avail)

(* Build the source physical-block table by successive bmap calls
   (§5.2). Sparse sources are rejected. *)
let build_src_map fs (ino : Inode.t) ~off_blocks ~nblocks =
  Array.init nblocks (fun i ->
      match Fs.bmap fs ino (off_blocks + i) with
      | Some phys -> phys
      | None -> Fs_error.raise_err (Fs_error.Einval "splice: sparse source"))

(* Build the destination table with the special allocating bmap that
   skips zero-fill (§5.2), growing the file and keeping the cache
   coherent with the coming write-around. *)
let build_dst_map fs (ino : Inode.t) ~off_blocks ~nblocks ~total ~block_size =
  let map =
    Array.init nblocks (fun i -> Fs.bmap_alloc fs ino (off_blocks + i) ~zero:false)
  in
  let new_size = (off_blocks * block_size) + total in
  if new_size > ino.Inode.size then begin
    ino.Inode.size <- new_size;
    ino.Inode.dirty <- true
  end;
  Array.iter (fun phys -> Cache.invalidate_cached (Fs.cache fs) (Fs.dev fs) phys) map;
  map

let make_desc ctx ~config ~total ~block_size kind =
  let sd_id = ctx.next_id in
  ctx.next_id <- sd_id + 1;
  count ctx "splice.started";
  tr ctx (fun () -> Printf.sprintf "sd%d started (%d bytes)" sd_id total);
  {
    sd_id;
    ctx;
    config;
    total;
    block_size;
    moved = 0;
    st = Running;
    callbacks = [];
    finalized = false;
    kind;
  }

let start_file_pump ctx ~config ~src_fs ~src_ino ~src_off ~sink ~size =
  let block_size = Fs.block_size src_fs in
  let total = resolve_file_size src_ino ~off_blocks:src_off ~block_size ~size in
  let nblocks = (total + block_size - 1) / block_size in
  let src_map = build_src_map src_fs src_ino ~off_blocks:src_off ~nblocks in
  let fp_sink =
    match sink with
    | Endpoint.Dst_file { fs = dst_fs; ino = dst_ino; off_blocks } ->
      if Fs.block_size dst_fs <> block_size then
        invalid_arg "Splice.start: mismatched block sizes";
      (* Copying a file onto an overlapping range of itself would read
         blocks the splice is concurrently overwriting. *)
      if
        dst_fs == src_fs
        && dst_ino.Inode.ino = src_ino.Inode.ino
        && src_off < off_blocks + nblocks
        && off_blocks < src_off + nblocks
      then
        Fs_error.raise_err
          (Fs_error.Einval "splice: source and destination ranges overlap");
      let dst_map =
        build_dst_map dst_fs dst_ino ~off_blocks ~nblocks ~total ~block_size
      in
      To_file { dst_fs; dst_map }
    | Endpoint.Dst_chardev cd -> To_chardev cd
    | Endpoint.Dst_socket { sock; dst } ->
      if block_size > 8192 then
        invalid_arg "Splice.start: block size exceeds datagram limit";
      To_socket { sock; dst }
    | Endpoint.Dst_tcp conn -> To_tcp conn
  in
  let pump =
    {
      src_fs;
      src_map;
      fp_sink;
      nblocks;
      next_read = 0;
      fp_reads = 0;
      fp_writes = 0;
      peak_reads = 0;
      peak_writes = 0;
      inflight = Hashtbl.create 16;
      issue_times = Hashtbl.create 16;
      retry_armed = false;
      wq = [];
      wflush_armed = false;
      ramp = 1;
    }
  in
  let t = make_desc ctx ~config ~total ~block_size (File_pump pump) in
  if total = 0 then begin
    t.st <- Completed;
    finalize t
  end
  else issue_reads t pump config.Flowctl.read_burst;
  t

let start_dgram_pump ctx ~config ~src_sock ~sink ~size =
  let total = if size = eof then max_int else size in
  if total < 0 then invalid_arg "Splice.start: negative size";
  let dg_sink =
    match sink with
    | Endpoint.Dst_socket { sock; dst } -> `Socket (sock, dst)
    | Endpoint.Dst_chardev cd -> `Chardev cd
    | Endpoint.Dst_file _ | Endpoint.Dst_tcp _ ->
      invalid_arg "Splice.start: unsupported datagram-source sink"
  in
  let pump = { dg_src = src_sock; dg_sink; dg_drops = 0 } in
  let t = make_desc ctx ~config ~total ~block_size:0 (Dgram_pump pump) in
  if total = 0 then begin
    t.st <- Completed;
    finalize t
  end
  else
    Udp.set_upcall src_sock
      (Some
         (fun dg ->
           if t.st = Running then begin
             charge t;
             let len = Bytes.length dg.Udp.d_payload in
             (match pump.dg_sink with
              | `Socket (out, dst) -> Udp.sendto out ~dst dg.Udp.d_payload
              | `Chardev cd ->
                let n = Chardev.try_write cd dg.Udp.d_payload 0 len in
                if n < len then pump.dg_drops <- pump.dg_drops + 1);
             t.moved <- t.moved + len;
             count ctx "splice.dgrams_forwarded";
             if t.moved >= t.total then begin
               t.st <- Completed;
               finalize t
             end
           end));
  t

let start_frame_pump ctx ~config ~fb ~sock ~dst ~size =
  let total = if size = eof then max_int else size in
  if total < 0 then invalid_arg "Splice.start: negative size";
  let mtu = 8192 in
  let pump = { fr_src = fb; fr_sock = sock; fr_dst = dst; fr_mtu = mtu } in
  let t = make_desc ctx ~config ~total ~block_size:0 (Frame_pump pump) in
  let rec loop () =
    if t.st = Running && t.moved < t.total then
      Framebuffer.next_frame fb (fun ~seq:_ frame ->
          if t.st = Running then begin
            charge t;
            let len = Bytes.length frame in
            let rec send off =
              if off < len then begin
                let n = min pump.fr_mtu (len - off) in
                Udp.sendto pump.fr_sock ~dst:pump.fr_dst (Bytes.sub frame off n);
                send (off + n)
              end
            in
            send 0;
            t.moved <- t.moved + len;
            count ctx "splice.frames_forwarded";
            if t.moved >= t.total then begin
              t.st <- Completed;
              finalize t
            end
            else loop ()
          end)
    else if t.st = Running then begin
      t.st <- Completed;
      finalize t
    end
  in
  if total = 0 then begin
    t.st <- Completed;
    finalize t
  end
  else loop ();
  t

(* {1 Stream (recording) pump} *)

let[@kpath.intr] stream_flush_block t (p : stream_pump) =
  let lblk = p.sp_next in
  let dst_dev = Fs.dev p.sp_fs in
  let hdr = Cache.getblk_hdr t.ctx.cache dst_dev p.sp_map.(lblk) in
  hdr.Buf.b_data <- p.staged;
  hdr.Buf.b_bcount <- t.block_size;
  hdr.Buf.b_lblkno <- lblk;
  hdr.Buf.b_splice <- t.sd_id;
  let written = p.staged_len in
  p.sp_next <- lblk + 1;
  p.staged <- Bytes.create t.block_size;
  p.staged_len <- 0;
  p.sp_writes <- p.sp_writes + 1;
  count t.ctx "splice.writes_issued";
  Cache.awrite_call t.ctx.cache hdr ~iodone:(fun hb ->
      charge t;
      p.sp_writes <- p.sp_writes - 1;
      let failed = Buf.has hb Buf.b_error_flag in
      let reason =
        match hb.Buf.b_error with
        | Some (Blkdev.Io_error m) -> m
        | None -> "write error"
      in
      Cache.release_hdr t.ctx.cache hb;
      match t.st with
      | Running ->
        if failed then begin
          t.st <- Aborted reason;
          if p.sp_writes = 0 then finalize t
        end
        else begin
          t.moved <- t.moved + written;
          if t.moved >= t.total then begin
            t.st <- Completed;
            finalize t
          end
        end
      | Aborted _ -> if p.sp_writes = 0 then finalize t
      | Completed -> ())

(* Interrupt-context chunk arrival from the device. *)
let[@kpath.intr] stream_on_chunk t (p : stream_pump) data =
  if t.st = Running then begin
    charge t;
    let len = Bytes.length data in
    let rec consume off =
      if off < len && t.st = Running && p.sp_next < Array.length p.sp_map
      then begin
        let block_target =
          min t.block_size (t.total - (p.sp_next * t.block_size))
        in
        let want = min (block_target - p.staged_len) (len - off) in
        Bytes.blit data off p.staged p.staged_len want;
        p.staged_len <- p.staged_len + want;
        if p.staged_len >= block_target then begin
          if p.sp_writes >= t.config.Flowctl.write_hi then begin
            (* Overrun: the sink cannot keep up; drop this block's worth
               of samples and re-stage the slot. *)
            p.sp_overruns <- p.sp_overruns + p.staged_len;
            count t.ctx "splice.overruns";
            p.staged_len <- 0
          end
          else stream_flush_block t p
        end;
        consume (off + want)
      end
    in
    consume 0
  end

let start_stream_pump ctx ~config ~mic ~sink ~size =
  if size = eof || size <= 0 then
    Fs_error.raise_err
      (Fs_error.Einval "splice: device capture requires a bounded size");
  match sink with
  | Endpoint.Dst_file { fs; ino; off_blocks } ->
    let block_size = Fs.block_size fs in
    let nblocks = (size + block_size - 1) / block_size in
    let sp_map =
      build_dst_map fs ino ~off_blocks ~nblocks ~total:size ~block_size
    in
    let pump =
      {
        sp_fs = fs;
        sp_map;
        sp_next = 0;
        staged = Bytes.create block_size;
        staged_len = 0;
        sp_writes = 0;
        sp_overruns = 0;
        sp_mic = mic;
      }
    in
    let t = make_desc ctx ~config ~total:size ~block_size (Stream_pump pump) in
    Micdev.set_consumer mic (Some (fun data -> stream_on_chunk t pump data));
    t
  | Endpoint.Dst_socket _ | Endpoint.Dst_tcp _ | Endpoint.Dst_chardev _ ->
    invalid_arg "Splice.start: device capture requires a file sink"

let start ctx ~src ~dst ?(config = Flowctl.default) ~size () =
  match src with
  | Endpoint.Src_file { fs; ino; off_blocks } ->
    start_file_pump ctx ~config ~src_fs:fs ~src_ino:ino ~src_off:off_blocks
      ~sink:dst ~size
  | Endpoint.Src_socket sock -> start_dgram_pump ctx ~config ~src_sock:sock ~sink:dst ~size
  | Endpoint.Src_mic mic -> start_stream_pump ctx ~config ~mic ~sink:dst ~size
  | Endpoint.Src_framebuffer fb -> (
    match dst with
    | Endpoint.Dst_socket { sock; dst } -> start_frame_pump ctx ~config ~fb ~sock ~dst ~size
    | Endpoint.Dst_file _ | Endpoint.Dst_chardev _ | Endpoint.Dst_tcp _ ->
      invalid_arg "Splice.start: framebuffer source requires a socket sink")
