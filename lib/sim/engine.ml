type handle = {
  time : Time.t;
  seq : int;
  fn : unit -> unit;
  mutable state : [ `Pending | `Cancelled | `Fired ];
}

type t = {
  mutable clock : Time.t;
  heap : handle Heap.t;
  mutable next_seq : int;
  mutable live : int; (* pending minus cancelled, for [pending] *)
}

exception Stopped

let stop () = raise Stopped

let cmp_handle a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  { clock = Time.zero; heap = Heap.create ~cmp:cmp_handle; next_seq = 0; live = 0 }

let now t = t.clock

let pending t = t.live

let schedule t ~at fn =
  if Time.(at < t.clock) then invalid_arg "Engine.schedule: time in the past";
  let h = { time = at; seq = t.next_seq; fn; state = `Pending } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.heap h;
  t.live <- t.live + 1;
  h

let schedule_after t d fn = schedule t ~at:(Time.add t.clock d) fn

let cancel t h =
  match h.state with
  | `Pending ->
    h.state <- `Cancelled;
    t.live <- t.live - 1
  | `Cancelled | `Fired -> ()

let cancelled h = h.state = `Cancelled

let fired h = h.state = `Fired

(* Pop the next non-cancelled event, discarding tombstones. *)
let rec next_live t =
  match Heap.pop t.heap with
  | None -> None
  | Some h -> if h.state = `Cancelled then next_live t else Some h

let fire t h =
  t.clock <- h.time;
  h.state <- `Fired;
  t.live <- t.live - 1;
  h.fn ()

let step t =
  match next_live t with
  | None -> false
  | Some h ->
    fire t h;
    true

let run ?until t =
  let continue = ref true in
  while !continue do
    match next_live t with
    | None -> continue := false
    | Some h ->
      (match until with
       | Some limit when Time.(h.time > limit) ->
         (* Re-queue: the event is beyond the horizon. *)
         Heap.push t.heap h;
         t.clock <- limit;
         continue := false
       | _ -> fire t h)
  done
