open Kpath_sim

let test_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next a) (Rng.next b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true (Rng.next a <> Rng.next b)

let test_int_bounds () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done;
  Alcotest.check_raises "bound <= 0" (Invalid_argument "Rng.int: bound <= 0")
    (fun () -> ignore (Rng.int r 0))

let test_float_bounds () =
  let r = Rng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Rng.float r 3.0 in
    if v < 0.0 || v >= 3.0 then Alcotest.fail "float out of bounds"
  done

let test_exponential_positive () =
  let r = Rng.create ~seed:11 in
  let sum = ref 0.0 in
  for _ = 1 to 2000 do
    let v = Rng.exponential r ~mean:5.0 in
    if v < 0.0 then Alcotest.fail "negative exponential";
    sum := !sum +. v
  done;
  let mean = !sum /. 2000.0 in
  if mean < 4.0 || mean > 6.0 then
    Alcotest.failf "exponential mean off: %f" mean

let test_shuffle_permutes () =
  let r = Rng.create ~seed:3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_split_independence () =
  let r = Rng.create ~seed:5 in
  let child = Rng.split r in
  Alcotest.(check bool) "parent and child diverge" true
    (Rng.next r <> Rng.next child)

(* Stats *)

let test_counters () =
  let s = Stats.create () in
  let c = Stats.counter s "a" in
  Stats.incr c;
  Stats.add c 4;
  Alcotest.(check int) "value" 5 (Stats.value c);
  Alcotest.(check int) "get" 5 (Stats.get s "a");
  Alcotest.(check int) "unknown is 0" 0 (Stats.get s "nope");
  Alcotest.(check bool) "same counter identity" true (Stats.counter s "a" == c);
  Alcotest.check_raises "negative add" (Invalid_argument "Stats.add: negative increment")
    (fun () -> Stats.add c (-1))

let test_to_list_sorted () =
  let s = Stats.create () in
  Stats.incr (Stats.counter s "zz");
  Stats.incr (Stats.counter s "aa");
  Alcotest.(check (list string)) "sorted names" [ "aa"; "zz" ]
    (List.map fst (Stats.to_list s))

let test_reset () =
  let s = Stats.create () in
  let c = Stats.counter s "x" in
  Stats.add c 10;
  Histogram.add (Stats.histogram s "h") 3;
  Stats.reset s;
  Alcotest.(check int) "zeroed" 0 (Stats.value c);
  Alcotest.(check int) "hist cleared" 0 (Histogram.count (Stats.histogram s "h"))

(* Histogram *)

let test_histogram_basic () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 0; 1; 2; 3; 100; 1000 ];
  Alcotest.(check int) "count" 6 (Histogram.count h);
  Alcotest.(check int) "total" 1106 (Histogram.total h);
  Alcotest.(check (option int)) "min" (Some 0) (Histogram.min_value h);
  Alcotest.(check (option int)) "max" (Some 1000) (Histogram.max_value h);
  Alcotest.(check bool) "p50 small" true (Histogram.percentile h 50.0 <= 3);
  Alcotest.(check bool) "p100 covers max" true (Histogram.percentile h 100.0 >= 1000)

let test_histogram_empty () =
  let h = Histogram.create () in
  Alcotest.(check bool) "mean is nan" true (Float.is_nan (Histogram.mean h));
  Alcotest.check_raises "percentile empty"
    (Invalid_argument "Histogram.percentile: empty") (fun () ->
      ignore (Histogram.percentile h 50.0));
  Alcotest.check_raises "negative sample"
    (Invalid_argument "Histogram.add: negative sample") (fun () ->
      Histogram.add h (-1))

let prop_histogram_buckets_cover =
  QCheck.Test.make ~name:"histogram buckets partition samples" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 100_000))
    (fun xs ->
      let h = Histogram.create () in
      List.iter (Histogram.add h) xs;
      let bucket_total =
        List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Histogram.buckets h)
      in
      bucket_total = List.length xs)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_determinism;
    Alcotest.test_case "rng seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "rng int bounds" `Quick test_int_bounds;
    Alcotest.test_case "rng float bounds" `Quick test_float_bounds;
    Alcotest.test_case "rng exponential" `Quick test_exponential_positive;
    Alcotest.test_case "rng shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "rng split" `Quick test_split_independence;
    Alcotest.test_case "stats counters" `Quick test_counters;
    Alcotest.test_case "stats sorted listing" `Quick test_to_list_sorted;
    Alcotest.test_case "stats reset" `Quick test_reset;
    Alcotest.test_case "histogram basics" `Quick test_histogram_basic;
    Alcotest.test_case "histogram empty/invalid" `Quick test_histogram_empty;
    Util.qcheck prop_histogram_buckets_cover;
  ]
