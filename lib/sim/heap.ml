type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }

let length h = h.size

let is_empty h = h.size = 0

let grow h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < h.size && h.cmp h.data.(l) h.data.(i) < 0 then l else i in
  let smallest =
    if r < h.size && h.cmp h.data.(r) h.data.(smallest) < 0 then r
    else smallest
  in
  if smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(smallest);
    h.data.(smallest) <- tmp;
    sift_down h smallest
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let peek_exn h =
  if h.size = 0 then invalid_arg "Heap.peek_exn: empty heap" else h.data.(0)

(* [pop_exn] is the hot-path variant: unlike {!pop} it allocates no
   [Some] box, so event dispatch stays allocation-free. *)
let pop_exn h =
  if h.size = 0 then invalid_arg "Heap.pop_exn: empty heap";
  let top = h.data.(0) in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    sift_down h 0
  end;
  top

let pop h = if h.size = 0 then None else Some (pop_exn h)

let clear h =
  h.data <- [||];
  h.size <- 0

let iter f h =
  for i = 0 to h.size - 1 do
    f h.data.(i)
  done
