open Kpath_sim
open Kpath_core
open Kpath_kernel
open Kpath_workloads

let mk ?capacity () =
  let now = ref Time.zero in
  let t = Trace.create ?capacity ~clock:(fun () -> !now) () in
  (t, now)

let test_disabled_by_default () =
  let t, _ = mk () in
  let forced = ref false in
  Trace.emit t ~cat:"x" (fun () ->
      forced := true;
      "msg");
  Alcotest.(check bool) "message not forced" false !forced;
  Alcotest.(check int) "nothing recorded" 0 (Trace.recorded t)

let test_enable_records () =
  let t, now = mk () in
  Trace.enable t "io";
  Trace.emit t ~cat:"io" (fun () -> "first");
  now := Time.ms 5;
  Trace.emit t ~cat:"io" (fun () -> "second");
  Trace.emit t ~cat:"other" (fun () -> "ignored");
  (match Trace.events t with
   | [ a; b ] ->
     Alcotest.(check string) "msg a" "first" a.Trace.ev_msg;
     Alcotest.(check string) "msg b" "second" b.Trace.ev_msg;
     Alcotest.check Util.time "timestamped" (Time.ms 5) b.Trace.ev_time
   | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  Trace.disable t "io";
  Trace.emit t ~cat:"io" (fun () -> "late");
  Alcotest.(check int) "disable stops recording" 2 (Trace.recorded t)

let test_enable_all () =
  let t, _ = mk () in
  Trace.enable_all t;
  Trace.emit t ~cat:"anything" (fun () -> "x");
  Alcotest.(check int) "recorded" 1 (Trace.recorded t)

(* Regression: [disable cat] used to clear the [enable_all] flag, so a
   fully-enabled trace went dark when any single category was turned
   off. The two switches are independent. *)
let test_disable_keeps_enable_all () =
  let t, _ = mk () in
  Trace.enable_all t;
  Trace.enable t "io";
  Trace.disable t "io";
  Trace.emit t ~cat:"io" (fun () -> "still recorded");
  Trace.emit t ~cat:"other" (fun () -> "also recorded");
  Alcotest.(check int) "enable_all survives disable" 2 (Trace.recorded t);
  Trace.disable_all t;
  Trace.emit t ~cat:"io" (fun () -> "dark");
  Alcotest.(check int) "disable_all stops everything" 2 (Trace.recorded t);
  (* Per-category enables also cleared by disable_all. *)
  let t2, _ = mk () in
  Trace.enable t2 "io";
  Trace.disable_all t2;
  Trace.emit t2 ~cat:"io" (fun () -> "dark");
  Alcotest.(check int) "categories cleared" 0 (Trace.recorded t2)

let test_dump_json () =
  let t, now = mk () in
  Trace.enable_all t;
  Trace.emit t ~cat:"io" (fun () -> "plain");
  now := Time.us 1500;
  Trace.emit t ~cat:"net" (fun () -> "quote \" backslash \\ newline \n done");
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Trace.dump_json fmt t;
  Format.pp_print_flush fmt ();
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check int) "one object per event" 2 (List.length lines);
  let l1 = List.nth lines 0 and l2 = List.nth lines 1 in
  Alcotest.(check bool) "fields present" true
    (Util.contains l1 "\"cat\":\"io\"" && Util.contains l1 "\"msg\":\"plain\"");
  Alcotest.(check bool) "timestamp in us" true
    (Util.contains l2 "\"t_us\":1500.0");
  Alcotest.(check bool) "quotes escaped" true
    (Util.contains l2 "quote \\\" backslash \\\\ newline \\n done");
  (* Every line is minimally well-formed JSON: balanced braces, no raw
     control characters or unescaped quotes inside values. *)
  List.iter
    (fun l ->
      Alcotest.(check bool) "object shaped" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}');
      String.iter (fun c -> Alcotest.(check bool) "no raw control" true (c >= ' ')) l)
    lines

let test_ring_wraps () =
  let t, _ = mk ~capacity:4 () in
  Trace.enable t "c";
  for i = 1 to 10 do
    Trace.emit t ~cat:"c" (fun () -> string_of_int i)
  done;
  let evs = Trace.events t in
  Alcotest.(check int) "keeps capacity" 4 (List.length evs);
  Alcotest.(check (list string)) "latest survive" [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.ev_msg) evs);
  Alcotest.(check int) "dropped counted" 6 (Trace.dropped t);
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.events t))

let test_splice_emits () =
  let s = Experiments.make_setup ~disk:`Ram ~file_bytes:(64 * 1024) () in
  Experiments.cold_caches s;
  let m = s.Experiments.machine in
  Trace.enable (Machine.trace m) "splice";
  let stats = Programs.fresh_copy_stats () in
  let _c =
    Programs.spawn_scp m ~src:s.Experiments.src_path ~dst:s.Experiments.dst_path
      stats
  in
  Machine.run m;
  let evs = Trace.events (Machine.trace m) in
  let has needle =
    List.exists (fun e -> Util.contains e.Trace.ev_msg needle) evs
  in
  Alcotest.(check bool) "start event" true (has "started");
  Alcotest.(check bool) "per-block write events" true (has "write done");
  Alcotest.(check bool) "completion event" true (has "completed");
  (* 8 blocks: bounded, per-block events present. *)
  Alcotest.(check bool) "sane volume" true (List.length evs >= 10)

let test_splice_overlap_rejected () =
  let m = Machine.create () in
  let drive = Machine.make_drive m ~name:"d0" ~kind:`Ram () in
  let rejected = ref false in
  let _p =
    Machine.spawn m ~name:"p" (fun () ->
        let fs =
          Kpath_fs.Fs.mkfs ~cache:(Machine.cache m) (Machine.blkdev drive)
            ~ninodes:16
        in
        let f = Kpath_fs.Fs.create_file fs "/f" in
        let buf = Bytes.create 8192 in
        for i = 0 to 7 do
          ignore (Kpath_fs.Fs.write fs f ~off:(i * 8192) ~len:8192 buf ~pos:0)
        done;
        (* Overlapping self-copy: blocks 0..3 onto 2..5. *)
        (try
           ignore
             (Splice.start (Machine.splice_ctx m)
                ~src:(Endpoint.src_file fs f ())
                ~dst:(Endpoint.dst_file fs f ~off_blocks:2 ())
                ~size:(4 * 8192) ())
         with Kpath_fs.Fs_error.Error (Kpath_fs.Fs_error.Einval _) ->
           rejected := true);
        (* Non-overlapping self-copy is allowed: blocks 0..3 onto 4..7. *)
        let d =
          Splice.start (Machine.splice_ctx m)
            ~src:(Endpoint.src_file fs f ())
            ~dst:(Endpoint.dst_file fs f ~off_blocks:4 ())
            ~size:(4 * 8192) ()
        in
        match Splice.wait d with
        | Ok n -> Alcotest.(check int) "copied half onto tail" (4 * 8192) n
        | Error e -> Alcotest.fail e)
  in
  Machine.run m;
  Alcotest.(check bool) "overlap rejected" true !rejected

let suite =
  [
    Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
    Alcotest.test_case "enable/disable" `Quick test_enable_records;
    Alcotest.test_case "enable all" `Quick test_enable_all;
    Alcotest.test_case "disable keeps enable_all" `Quick
      test_disable_keeps_enable_all;
    Alcotest.test_case "dump json" `Quick test_dump_json;
    Alcotest.test_case "ring wrap" `Quick test_ring_wraps;
    Alcotest.test_case "splice emits events" `Quick test_splice_emits;
    Alcotest.test_case "same-file overlap" `Quick test_splice_overlap_rejected;
  ]
