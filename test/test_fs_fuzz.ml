(* Model-based filesystem fuzzing: random operation sequences are applied
   both to the real filesystem and to a trivial in-memory model; after
   every sequence the two must agree and fsck must be clean. A remount
   round-trip closes each run. *)

open Kpath_sim
open Kpath_proc
open Kpath_dev
open Kpath_buf
open Kpath_fs

type op =
  | Create of int
  | Write of int * int * int (* file, off, len *)
  | Truncate of int * int
  | Unlink of int
  | Link of int * int (* existing file, fresh name *)
  | Rename of int * int

let pp_op = function
  | Create n -> Printf.sprintf "create f%d" n
  | Write (f, off, len) -> Printf.sprintf "write f%d off=%d len=%d" f off len
  | Truncate (f, n) -> Printf.sprintf "truncate f%d %d" f n
  | Unlink f -> Printf.sprintf "unlink f%d" f
  | Link (a, b) -> Printf.sprintf "link f%d f%d" a b
  | Rename (a, b) -> Printf.sprintf "rename f%d f%d" a b

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun n -> Create n) (int_bound 7));
        ( 6,
          map3
            (fun f off len -> Write (f, off, len))
            (int_bound 7) (int_bound 30_000) (int_bound 9_000) );
        (2, map2 (fun f n -> Truncate (f, n)) (int_bound 7) (int_bound 20_000));
        (2, map (fun f -> Unlink f) (int_bound 7));
        (2, map2 (fun a b -> Link (a, b)) (int_bound 7) (int_bound 7));
        (2, map2 (fun a b -> Rename (a, b)) (int_bound 7) (int_bound 7));
      ])

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (1 -- 40) gen_op)

(* The model: name slot -> contents. Hard links share a content cell. *)
type cell = { mutable data : Bytes.t }

let model_write cell ~off ~len =
  let needed = off + len in
  if Bytes.length cell.data < needed then begin
    let d = Bytes.make needed '\000' in
    Bytes.blit cell.data 0 d 0 (Bytes.length cell.data);
    cell.data <- d
  end;
  for i = 0 to len - 1 do
    Bytes.set cell.data (off + i) (Char.chr ((off + i) land 0xff))
  done

let model_truncate cell n =
  if Bytes.length cell.data > n then cell.data <- Bytes.sub cell.data 0 n
  else if Bytes.length cell.data < n then begin
    let d = Bytes.make n '\000' in
    Bytes.blit cell.data 0 d 0 (Bytes.length cell.data);
    cell.data <- d
  end

let name k = Printf.sprintf "/f%d" k

let run_ops ops =
  let engine = Engine.create () in
  let sched = Sched.create engine in
  let intr ~service fn = Sched.interrupt sched ~service fn in
  let rd =
    Ramdisk.create ~name:"ram0" ~copy_rate:200e6 ~block_size:4096 ~nblocks:512
      ~engine ~intr ()
  in
  let dev = Ramdisk.blkdev rd in
  let cache = Cache.create ~block_size:4096 ~nbufs:24 () in
  let verdict = ref (Ok ()) in
  let _p =
    Sched.spawn sched ~name:"fuzz" (fun () ->
        let fs = Fs.mkfs ~cache dev ~ninodes:24 in
        let model : cell option array = Array.make 8 None in
        let apply op =
          (* Apply to the real fs and mirror the outcome in the model;
             error outcomes must leave both unchanged. *)
          match op with
          | Create k -> (
            match Fs.create_file fs (name k) with
            | _ -> model.(k) <- Some { data = Bytes.empty }
            | exception Fs_error.Error (Eexist | Enospc) -> ())
          | Write (k, off, len) -> (
            match model.(k) with
            | None -> ()
            | Some cell -> (
              let src =
                Bytes.init len (fun i -> Char.chr ((off + i) land 0xff))
              in
              match
                Fs.write fs (Fs.lookup fs (name k)) ~off ~len src ~pos:0
              with
              | _ -> model_write cell ~off ~len
              | exception Fs_error.Error (Enospc | Efbig) -> ()))
          | Truncate (k, n) -> (
            match model.(k) with
            | None -> ()
            | Some cell ->
              Fs.truncate fs (Fs.lookup fs (name k)) n;
              model_truncate cell n)
          | Unlink k -> (
            match model.(k) with
            | None -> ()
            | Some _ ->
              Fs.unlink fs (name k);
              model.(k) <- None)
          | Link (a, b) -> (
            match (model.(a), model.(b)) with
            | Some cell, None ->
              Fs.link fs (name a) (name b);
              model.(b) <- Some cell (* shared content cell *)
            | _ -> ())
          | Rename (a, b) ->
            if a <> b then (
              match model.(a) with
              | None -> ()
              | Some cell -> (
                match model.(b) with
                | Some cell_b when cell_b == cell ->
                  (* Two hard links of one inode: POSIX rename is a
                     no-op, both names survive. *)
                  Fs.rename fs (name a) (name b)
                | _ -> (
                  match Fs.rename fs (name a) (name b) with
                  | () ->
                    model.(b) <- Some cell;
                    model.(a) <- None
                  | exception Fs_error.Error _ -> ())))
        in
        List.iter apply ops;
        (* Check: every model file reads back exactly; fsck clean;
           then remount and check again. *)
        let check fs tag =
          Array.iteri
            (fun k cell ->
              match cell with
              | None -> (
                match Fs.lookup fs (name k) with
                | _ -> failwith (tag ^ ": " ^ name k ^ " should not exist")
                | exception Fs_error.Error Enoent -> ())
              | Some { data } ->
                let ino = Fs.lookup fs (name k) in
                if ino.Inode.size <> Bytes.length data then
                  failwith
                    (Printf.sprintf "%s: %s size %d, model %d" tag (name k)
                       ino.Inode.size (Bytes.length data));
                let out = Bytes.create (max 1 ino.Inode.size) in
                let n = Fs.read fs ino ~off:0 ~len:ino.Inode.size out ~pos:0 in
                if Bytes.sub out 0 n <> data then
                  failwith (tag ^ ": contents diverge for " ^ name k))
            model;
          match Fs.fsck fs with
          | [] -> ()
          | problems -> failwith (tag ^ ": fsck: " ^ String.concat "; " problems)
        in
        (try
           check fs "live";
           Fs.sync fs;
           Cache.invalidate_dev cache dev;
           let fs2 = Fs.mount ~cache dev in
           check fs2 "remounted"
         with e -> verdict := Error e))
  in
  Engine.run engine;
  Sched.check_deadlock sched;
  Cache.check_invariants cache;
  match !verdict with Ok () -> true | Error e -> raise e

let prop_fs_model =
  QCheck.Test.make ~name:"fs agrees with model under random op sequences"
    ~count:60 arb_ops run_ops

(* Directed regression cases for link/rename semantics. *)
let test_hardlink_shares_data () =
  let ok = ref false in
  let engine = Engine.create () in
  let sched = Sched.create engine in
  let intr ~service fn = Sched.interrupt sched ~service fn in
  let rd =
    Ramdisk.create ~name:"r" ~copy_rate:200e6 ~block_size:4096 ~nblocks:128
      ~engine ~intr ()
  in
  let cache = Cache.create ~block_size:4096 ~nbufs:16 () in
  let _p =
    Sched.spawn sched ~name:"t" (fun () ->
        let fs = Fs.mkfs ~cache (Ramdisk.blkdev rd) ~ninodes:16 in
        let f = Fs.create_file fs "/a" in
        ignore (Fs.write fs f ~off:0 ~len:5 (Bytes.of_string "hello") ~pos:0);
        Fs.link fs "/a" "/b";
        Alcotest.(check int) "nlink" 2 f.Inode.nlink;
        (* Write through one name, read through the other. *)
        ignore (Fs.write fs f ~off:0 ~len:5 (Bytes.of_string "world") ~pos:0);
        let g = Fs.lookup fs "/b" in
        let out = Bytes.create 5 in
        ignore (Fs.read fs g ~off:0 ~len:5 out ~pos:0);
        Alcotest.(check string) "shared" "world" (Bytes.to_string out);
        (* Dropping one link keeps the data. *)
        Fs.unlink fs "/a";
        Alcotest.(check int) "nlink back to 1" 1 g.Inode.nlink;
        Alcotest.(check bool) "still alive" true (g.Inode.ftype = Inode.Regular);
        Fs.unlink fs "/b";
        Alcotest.(check bool) "now freed" true (g.Inode.ftype = Inode.Free);
        Alcotest.(check (list string)) "fsck" [] (Fs.fsck fs);
        ok := true)
  in
  Engine.run engine;
  Alcotest.(check bool) "ran" true !ok

let test_rename_replaces () =
  let ok = ref false in
  let engine = Engine.create () in
  let sched = Sched.create engine in
  let intr ~service fn = Sched.interrupt sched ~service fn in
  let rd =
    Ramdisk.create ~name:"r" ~copy_rate:200e6 ~block_size:4096 ~nblocks:128
      ~engine ~intr ()
  in
  let cache = Cache.create ~block_size:4096 ~nbufs:16 () in
  let _p =
    Sched.spawn sched ~name:"t" (fun () ->
        let fs = Fs.mkfs ~cache (Ramdisk.blkdev rd) ~ninodes:16 in
        let free0 = ref 0 in
        let a = Fs.create_file fs "/a" in
        ignore (Fs.write fs a ~off:0 ~len:3 (Bytes.of_string "AAA") ~pos:0);
        let b = Fs.create_file fs "/b" in
        ignore (Fs.write fs b ~off:0 ~len:4096 (Bytes.create 4096) ~pos:0);
        free0 := Fs.free_blocks fs;
        (* Replacing /b must free its storage. *)
        Fs.rename fs "/a" "/b";
        Alcotest.(check bool) "b's block freed" true (Fs.free_blocks fs > !free0);
        Alcotest.check_raises "/a gone" (Fs_error.Error Fs_error.Enoent)
          (fun () -> ignore (Fs.lookup fs "/a"));
        let nb = Fs.lookup fs "/b" in
        let out = Bytes.create 3 in
        ignore (Fs.read fs nb ~off:0 ~len:3 out ~pos:0);
        Alcotest.(check string) "contents moved" "AAA" (Bytes.to_string out);
        (* Directory rename. *)
        ignore (Fs.mkdir fs "/d");
        Fs.rename fs "/d" "/e";
        ignore (Fs.lookup fs "/e");
        Alcotest.(check (list string)) "fsck" [] (Fs.fsck fs);
        ok := true)
  in
  Engine.run engine;
  Alcotest.(check bool) "ran" true !ok

let suite =
  [
    Alcotest.test_case "hard links" `Quick test_hardlink_shares_data;
    Alcotest.test_case "rename semantics" `Quick test_rename_replaces;
    Util.qcheck prop_fs_model;
  ]
