open Kpath_sim

let test_fifo_same_instant () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.schedule e ~at:(Time.ms 1) (note "a"));
  ignore (Engine.schedule e ~at:(Time.ms 1) (note "b"));
  ignore (Engine.schedule e ~at:(Time.ms 1) (note "c"));
  Engine.run e;
  Alcotest.(check (list string)) "scheduling order" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e ~at:(Time.ms 3) (fun () -> log := 3 :: !log));
  ignore (Engine.schedule e ~at:(Time.ms 1) (fun () -> log := 1 :: !log));
  ignore (Engine.schedule e ~at:(Time.ms 2) (fun () -> log := 2 :: !log));
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.check Util.time "clock at last event" (Time.ms 3) (Engine.now e)

let test_past_rejected () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~at:(Time.ms 2) (fun () -> ()));
  Engine.run e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule: time in the past")
    (fun () -> ignore (Engine.schedule e ~at:(Time.ms 1) (fun () -> ())))

let test_cancellation () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~at:(Time.ms 1) (fun () -> fired := true) in
  Alcotest.(check int) "pending" 1 (Engine.pending e);
  Engine.cancel e h;
  Alcotest.(check int) "pending after cancel" 0 (Engine.pending e);
  Alcotest.(check bool) "cancelled" true (Engine.cancelled e h);
  Engine.run e;
  Alcotest.(check bool) "did not fire" false !fired;
  Alcotest.(check bool) "not fired flag" false (Engine.fired e h);
  (* double cancel is a no-op *)
  Engine.cancel e h

let test_schedule_from_callback () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~at:(Time.ms 1) (fun () ->
         log := "outer" :: !log;
         ignore
           (Engine.schedule_after e (Time.ms 1) (fun () ->
                log := "inner" :: !log))));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.check Util.time "clock" (Time.ms 2) (Engine.now e)

let test_run_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~at:(Time.ms 1) (fun () -> incr fired));
  ignore (Engine.schedule e ~at:(Time.ms 10) (fun () -> incr fired));
  Engine.run ~until:(Time.ms 5) e;
  Alcotest.(check int) "one fired" 1 !fired;
  Alcotest.check Util.time "clock at horizon" (Time.ms 5) (Engine.now e);
  Alcotest.(check int) "one still pending" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "both fired" 2 !fired

let test_step () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~at:(Time.ms 1) (fun () -> incr fired));
  ignore (Engine.schedule e ~at:(Time.ms 2) (fun () -> incr fired));
  Alcotest.(check bool) "step 1" true (Engine.step e);
  Alcotest.(check int) "after one step" 1 !fired;
  Alcotest.(check bool) "step 2" true (Engine.step e);
  Alcotest.(check bool) "step empty" false (Engine.step e)

let test_stop () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~at:(Time.ms 1) (fun () -> incr fired));
  ignore (Engine.schedule e ~at:(Time.ms 2) (fun () -> Engine.stop ()));
  ignore (Engine.schedule e ~at:(Time.ms 3) (fun () -> incr fired));
  (try Engine.run e with Engine.Stopped -> ());
  Alcotest.(check int) "stopped early" 1 !fired;
  Alcotest.check Util.time "clock at stop" (Time.ms 2) (Engine.now e)

let prop_events_fire_in_order =
  QCheck.Test.make ~name:"events fire in (time, seq) order" ~count:200
    QCheck.(list_of_size Gen.(1 -- 40) (int_bound 1_000))
    (fun times ->
      let e = Engine.create () in
      let log = ref [] in
      List.iteri
        (fun i ms ->
          ignore
            (Engine.schedule e ~at:(Time.us ms) (fun () -> log := (ms, i) :: !log)))
        times;
      Engine.run e;
      let fired = List.rev !log in
      let expected =
        List.mapi (fun i ms -> (ms, i)) times
        |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      fired = expected)

let suite =
  [
    Alcotest.test_case "FIFO at same instant" `Quick test_fifo_same_instant;
    Alcotest.test_case "time ordering" `Quick test_time_order;
    Alcotest.test_case "past scheduling rejected" `Quick test_past_rejected;
    Alcotest.test_case "cancellation" `Quick test_cancellation;
    Alcotest.test_case "schedule from callback" `Quick test_schedule_from_callback;
    Alcotest.test_case "run ~until" `Quick test_run_until;
    Alcotest.test_case "single stepping" `Quick test_step;
    Alcotest.test_case "early stop" `Quick test_stop;
    Util.qcheck prop_events_fire_in_order;
  ]
