(* Known-bad fixture: a top-level mutable record is shared,
   unsynchronized, by every OCaml domain a sharded sweep spawns
   (Kpath_sim.Shard) -- a data race, not a style problem. The record's
   mutability is discovered through the fixpoint: [counters] has
   mutable fields, so the wrapping [registry] record is mutable too.
   Expected: exactly one [domain-global-mutable] finding. *)

type counters = { mutable hits : int; mutable misses : int }

type registry = { label : string; stats : counters }

let global_registry = { label = "cache"; stats = { hits = 0; misses = 0 } }

let bump () = global_registry.stats.hits <- global_registry.stats.hits + 1
