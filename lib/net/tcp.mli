(** TCP: a reliable byte-stream transport.

    A deliberately small but real TCP over {!Netif}: three-way
    handshake, MSS segmentation, cumulative acknowledgements, a sliding
    window bounded by the receiver's advertised buffer space,
    out-of-order segment buffering, go-back-N retransmission on a
    backed-off timeout, and FIN teardown. Enough to serve files over
    lossy links — the workload for which splice's file-to-socket path
    later became famous as [sendfile(2)].

    Blocking operations ({!accept}, {!connect}, {!send}, {!recv},
    {!close}) must run in a process coroutine; {!send_async} is the
    interrupt-context entry point splice uses as a sink, back-pressured
    by the send buffer and therefore by the peer's consumption rate. *)

open Kpath_sim

type listener
(** A passive (listening) endpoint. *)

type conn
(** One connection. *)

type addr = { a_if : int; a_port : int }
(** Interface id + port (same shape as {!Udp.addr}). *)

val protocol_number : int
(** 6, the IP protocol number used on {!Netif} frames. *)

val header_bytes : int
(** Bytes of TCP header carried in each frame payload. *)

val mss : Netif.net -> int
(** Maximum segment payload for a given network's MTU. *)

val listen : Netif.t -> port:int -> ?backlog:int -> unit -> listener
(** Bind a listening port. Raises [Invalid_argument] if the port is in
    use on this interface. *)

val accept : listener -> conn
(** Block until a connection has completed its handshake. Process
    context. *)

val connect : Netif.t -> port:int -> dst:addr -> ?rcvbuf:int -> ?sndbuf:int -> unit -> conn
(** Active open: block until established (SYN retransmitted on loss).
    Process context. Raises [Failure] after too many SYN timeouts. *)

val send : conn -> bytes -> pos:int -> len:int -> unit
(** Queue [len] bytes on the stream, blocking while the send buffer is
    full (i.e. until the peer's window opens). Process context. Raises
    [Invalid_argument] on a closed connection. *)

val send_async : conn -> bytes -> pos:int -> len:int -> (unit -> unit) -> unit
(** Like {!send} but callback-based: [k] fires (interrupt context) once
    every byte has been accepted into the send buffer. Writers are
    admitted in FIFO order. The splice sink. *)

val recv : conn -> bytes -> pos:int -> len:int -> int
(** Block for at least one byte of in-order data; returns the count
    copied, or [0] at end of stream (peer closed). Process context. *)

val close : conn -> unit
(** Half-close: send FIN after all queued data, then return (does not
    wait for the peer). Further {!send}s raise. *)

val state_name : conn -> string
(** Diagnostic: ["syn_sent"], ["established"], ["fin_wait"], ["closed"]... *)

val local_addr : conn -> addr

val remote_addr : conn -> addr

val bytes_sent : conn -> int
(** Stream bytes accepted from the application so far. *)

val bytes_acked : conn -> int
(** Stream bytes the peer has acknowledged. *)

val retransmits : conn -> int
(** Segments retransmitted (loss recovery). *)

val cwnd : conn -> int
(** Current congestion window, bytes (starts at 2 MSS, slow start /
    AIMD thereafter). *)

val srtt : conn -> float option
(** Smoothed round-trip time in seconds, once at least one sample has
    been taken. *)

val rto : conn -> Time.span
(** Current retransmission timeout. *)

val stats : conn -> Stats.t
