open Kpath_core

let test_defaults_match_paper () =
  Alcotest.(check int) "read watermark" 3 Flowctl.default.Flowctl.read_lo;
  Alcotest.(check int) "write watermark" 5 Flowctl.default.Flowctl.write_hi;
  Alcotest.(check int) "burst" 5 Flowctl.default.Flowctl.read_burst

let test_reads_to_issue () =
  let c = Flowctl.default in
  Alcotest.(check int) "both low" 5
    (Flowctl.reads_to_issue c ~pending_reads:0 ~pending_writes:0);
  Alcotest.(check int) "reads at watermark" 0
    (Flowctl.reads_to_issue c ~pending_reads:3 ~pending_writes:0);
  Alcotest.(check int) "writes at watermark" 0
    (Flowctl.reads_to_issue c ~pending_reads:0 ~pending_writes:5);
  Alcotest.(check int) "just below both" 5
    (Flowctl.reads_to_issue c ~pending_reads:2 ~pending_writes:4)

let test_lockstep () =
  let c = Flowctl.lockstep in
  Alcotest.(check int) "single" 1
    (Flowctl.reads_to_issue c ~pending_reads:0 ~pending_writes:0);
  Alcotest.(check int) "gated" 0
    (Flowctl.reads_to_issue c ~pending_reads:1 ~pending_writes:0);
  Alcotest.(check int) "max in flight" 1 (Flowctl.max_in_flight c)

let test_max_in_flight () =
  Alcotest.(check int) "paper config bound" 7
    (Flowctl.max_in_flight Flowctl.default)

let test_validation () =
  Alcotest.check_raises "zero burst"
    (Invalid_argument "Flowctl.make: watermarks must be positive") (fun () ->
      ignore (Flowctl.make ~read_lo:1 ~write_hi:1 ~read_burst:0))

let prop_never_negative =
  QCheck.Test.make ~name:"reads_to_issue is 0 or burst" ~count:300
    QCheck.(
      quad (int_range 1 10) (int_range 1 10) (int_range 1 10)
        (pair (int_bound 20) (int_bound 20)))
    (fun (lo, hi, burst, (r, w)) ->
      let c = Flowctl.make ~read_lo:lo ~write_hi:hi ~read_burst:burst in
      let n = Flowctl.reads_to_issue c ~pending_reads:r ~pending_writes:w in
      n = 0 || n = burst)

let suite =
  [
    Alcotest.test_case "paper defaults" `Quick test_defaults_match_paper;
    Alcotest.test_case "issue policy" `Quick test_reads_to_issue;
    Alcotest.test_case "lockstep" `Quick test_lockstep;
    Alcotest.test_case "max in flight" `Quick test_max_in_flight;
    Alcotest.test_case "validation" `Quick test_validation;
    Util.qcheck prop_never_negative;
  ]
