(* Benchmark harness: regenerates every table of the paper's evaluation
   (§6) plus the ablations DESIGN.md calls out, printing measured values
   next to the paper's. Also registers one Bechamel microbenchmark per
   table measuring the host cost of regenerating it.

   Usage:
     dune exec bench/main.exe                 -- everything (default sizes)
     dune exec bench/main.exe -- table1       -- only Table 1
     dune exec bench/main.exe -- table2 ablation-watermarks ...
     dune exec bench/main.exe -- quick        -- everything at reduced size
   Targets: table1 table1-natural table2 ablation-watermarks
            ablation-lockstep sweep-size sweep-fanout sweep-cluster
            sweep-cluster-quick sweep-wallclock smoke table-udp bechamel
            quick all *)

open Kpath_workloads

let mb = 1024 * 1024

let line = String.make 78 '-'

let header title = Printf.printf "\n%s\n%s\n%s\n" line title line

(* {1 Table 1} *)

(* The paper's Table 1 values. F_cp and F_scp follow from the quoted
   "percentage of the IDLE rate" figures in §6.2. *)
let paper_table1 = function
  | `Ram -> (2.00, 1.25, 1.60, 60.0)
  | `Rz56 -> (1.67, 1.43, 1.17, 17.0)
  | `Rz58 -> (1.67, 1.25, 1.33, 33.0)

let print_table1 ?(file_bytes = 8 * mb) ?(ops = 2000) ~pace () =
  (match pace with
   | Some rate ->
     header
       (Printf.sprintf
          "Table 1: CPU availability factors (copying %d MB file, both \
           copiers paced to %.1f MB/s)"
          (file_bytes / mb) (rate /. 1e6))
   | None ->
     header
       (Printf.sprintf
          "Table 1 (natural-rate variant): copiers run at device maximum (%d \
           MB file)"
          (file_bytes / mb)));
  Printf.printf "%-6s | %8s %8s | %8s %8s | %8s %8s | %8s %8s\n" "Disk" "F_cp"
    "paper" "F_scp" "paper" "I" "paper" "%impr" "paper";
  Printf.printf "%s\n" line;
  List.iter
    (fun r ->
      let p_fcp, p_fscp, p_i, p_pct = paper_table1 r.Experiments.av_disk in
      Printf.printf
        "%-6s | %8.2f %8.2f | %8.2f %8.2f | %8.2f %8.2f | %7.0f%% %7.0f%%\n"
        (Experiments.disk_name r.Experiments.av_disk)
        r.Experiments.av_f_cp p_fcp r.Experiments.av_f_scp p_fscp
        r.Experiments.av_improvement p_i r.Experiments.av_pct p_pct)
    (Experiments.table1 ~file_bytes ~ops ~pace ());
  print_newline ()

(* {1 Table 2} *)

let paper_table2 = function
  | `Ram -> (Some 3343.0, Some 1884.0, Some 77.0)
  | `Rz56 | `Rz58 ->
    (* The RZ rows' numeric cells were lost in the source transcription
       of the paper; §6.3 says only that "the benefit of splice is
       minor" for real disks. *)
    (None, None, None)

let opt_cell = function Some v -> Printf.sprintf "%8.0f" v | None -> "  (lost)"

let print_table2 ?(file_bytes = 8 * mb) () =
  header
    (Printf.sprintf "Table 2: mean throughput (copying %d MB file, KB/s)"
       (file_bytes / mb));
  Printf.printf "%-6s | %8s %8s | %8s %8s | %8s %8s | %s\n" "Disk" "SCP"
    "paper" "CP" "paper" "%impr" "paper" "verified";
  Printf.printf "%s\n" line;
  List.iter
    (fun r ->
      let p_scp, p_cp, p_pct = paper_table2 r.Experiments.tp_disk in
      Printf.printf "%-6s | %8.0f %s | %8.0f %s | %7.0f%% %s | %s\n"
        (Experiments.disk_name r.Experiments.tp_disk)
        r.Experiments.tp_scp_kbps (opt_cell p_scp) r.Experiments.tp_cp_kbps
        (opt_cell p_cp) r.Experiments.tp_pct_improvement
        (match p_pct with
         | Some v -> Printf.sprintf "%7.0f%%" v
         | None -> "(minor)")
        "yes")
    (Experiments.table2 ~file_bytes ());
  print_newline ()

(* {1 Ablations} *)

let print_watermarks ?(file_bytes = 4 * mb) () =
  header
    (Printf.sprintf
       "Ablation (s5.5): flow-control watermarks, splice throughput, RZ58, \
        %d MB file  [paper: lo=3 hi=5 burst=5 'adequate']"
       (file_bytes / mb));
  let open Kpath_core in
  let configs =
    [
      Flowctl.lockstep;
      Flowctl.make ~read_lo:2 ~write_hi:2 ~read_burst:2;
      Flowctl.default;
      Flowctl.make ~read_lo:6 ~write_hi:10 ~read_burst:10;
      Flowctl.make ~read_lo:12 ~write_hi:20 ~read_burst:20;
    ]
  in
  Printf.printf "%-24s | %10s | %s\n" "config (lo/hi/burst)" "KB/s" "verified";
  Printf.printf "%s\n" line;
  List.iter
    (fun (c, m) ->
      Printf.printf "%-24s | %10.0f | %b\n"
        (Printf.sprintf "%d/%d/%d" c.Flowctl.read_lo c.Flowctl.write_hi
           c.Flowctl.read_burst)
        m.Experiments.cm_kb_per_sec m.Experiments.cm_verified)
    (Experiments.watermark_sweep ~disk:`Rz58 ~file_bytes configs);
  print_newline ()

let print_lockstep ?(file_bytes = 4 * mb) () =
  header
    "Ablation (s5.4): callout decoupling -- pipelined splice vs lock-step \
     (one block in flight)";
  let open Kpath_core in
  Printf.printf "%-6s | %14s | %14s | %s\n" "Disk" "pipelined KB/s"
    "lockstep KB/s" "speedup";
  Printf.printf "%s\n" line;
  List.iter
    (fun disk ->
      let pipe = Experiments.measure_copy ~mode:`Scp ~disk ~file_bytes () in
      let lock =
        Experiments.measure_copy ~mode:`Scp ~disk ~file_bytes
          ~config:Flowctl.lockstep ()
      in
      Printf.printf "%-6s | %14.0f | %14.0f | %5.2fx\n"
        (Experiments.disk_name disk) pipe.Experiments.cm_kb_per_sec
        lock.Experiments.cm_kb_per_sec
        (pipe.Experiments.cm_kb_per_sec /. lock.Experiments.cm_kb_per_sec))
    [ `Ram; `Rz56; `Rz58 ];
  print_newline ()

let print_size_sweep () =
  header
    "Sweep (s6.2): file-size sensitivity, RZ58  [paper: 'alternative sizes \
     statistically indistinguishable']";
  Printf.printf "%-8s | %10s | %10s | %8s\n" "size" "SCP KB/s" "CP KB/s"
    "%impr";
  Printf.printf "%s\n" line;
  List.iter
    (fun (size, scp, cp) ->
      Printf.printf "%5d MB | %10.0f | %10.0f | %7.0f%%\n" (size / mb)
        scp.Experiments.cm_kb_per_sec cp.Experiments.cm_kb_per_sec
        ((scp.Experiments.cm_kb_per_sec -. cp.Experiments.cm_kb_per_sec)
        /. cp.Experiments.cm_kb_per_sec *. 100.0))
    (Experiments.size_sweep ~disk:`Rz58
       [ 1 * mb; 2 * mb; 4 * mb; 8 * mb; 16 * mb ]);
  print_newline ()

let print_blocksize_sweep ?(file_bytes = 4 * mb) () =
  header
    "Sweep (substrate): filesystem/cache block size, RZ58, cp vs scp      [paper used the 8 KB FFS block]";
  Printf.printf "%-8s | %10s | %10s | %8s\n" "block" "SCP KB/s" "CP KB/s"
    "%impr";
  Printf.printf "%s\n" line;
  List.iter
    (fun block_size ->
      let machine_config =
        { Kpath_kernel.Config.decstation_5000_200 with
          Kpath_kernel.Config.block_size;
          ramdisk_blocks = 16 * mb / block_size;
        }
      in
      let scp =
        Experiments.measure_copy ~mode:`Scp ~disk:`Rz58 ~file_bytes
          ~machine_config ()
      in
      let cp =
        Experiments.measure_copy ~mode:`Cp ~disk:`Rz58 ~file_bytes
          ~machine_config ()
      in
      Printf.printf "%5d KB | %10.0f | %10.0f | %7.0f%%\n" (block_size / 1024)
        scp.Experiments.cm_kb_per_sec cp.Experiments.cm_kb_per_sec
        ((scp.Experiments.cm_kb_per_sec -. cp.Experiments.cm_kb_per_sec)
        /. cp.Experiments.cm_kb_per_sec *. 100.0))
    [ 4096; 8192; 16384 ];
  print_newline ()

let print_cachesize_sweep ?(file_bytes = 8 * mb) () =
  header
    "Sweep (substrate): buffer cache size, RZ58, 8 MB copy [paper: 3.2 MB      cache, file deliberately larger]";
  Printf.printf "%-8s | %10s | %10s\n" "cache" "SCP KB/s" "CP KB/s";
  Printf.printf "%s\n" line;
  List.iter
    (fun cache_kb ->
      let machine_config =
        { Kpath_kernel.Config.decstation_5000_200 with
          Kpath_kernel.Config.cache_bytes = cache_kb * 1024;
        }
      in
      let scp =
        Experiments.measure_copy ~mode:`Scp ~disk:`Rz58 ~file_bytes
          ~machine_config ()
      in
      let cp =
        Experiments.measure_copy ~mode:`Cp ~disk:`Rz58 ~file_bytes
          ~machine_config ()
      in
      Printf.printf "%5d KB | %10.0f | %10.0f\n" cache_kb
        scp.Experiments.cm_kb_per_sec cp.Experiments.cm_kb_per_sec)
    [ 1600; 3200; 6400 ];
  print_newline ()

let print_udp () =
  header
    "Extension (s5.1): UDP socket-to-socket splice vs recvfrom/sendto relay \
     (500 x 4 KB datagrams)";
  Printf.printf "%-10s | %10s | %8s | %10s\n" "relay" "delivered" "dropped"
    "CPU busy";
  Printf.printf "%s\n" line;
  List.iter
    (fun (name, mode) ->
      let r = Experiments.measure_relay ~mode () in
      Printf.printf "%-10s | %10d | %8d | %9.1f%%\n" name
        r.Experiments.rm_datagrams r.Experiments.rm_dropped
        (r.Experiments.rm_cpu_busy_frac *. 100.0))
    [ ("process", `Process); ("splice", `Splice) ];
  print_newline ()

let print_elevator ?(file_bytes = 4 * mb) () =
  header
    "Ablation (substrate): disk queue discipline, same-disk copy, RZ56 --      FIFO vs C-LOOK elevator";
  Printf.printf "%-6s | %12s | %14s | %s\n" "copier" "FIFO KB/s"
    "elevator KB/s" "speedup";
  Printf.printf "%s\n" line;
  List.iter
    (fun (name, mode) ->
      let fifo =
        Experiments.measure_copy ~mode ~disk:`Rz56 ~file_bytes ~same_disk:true
          ~disk_queue:Kpath_dev.Disk.Fifo ()
      in
      let elev =
        Experiments.measure_copy ~mode ~disk:`Rz56 ~file_bytes ~same_disk:true
          ~disk_queue:Kpath_dev.Disk.Elevator ()
      in
      Printf.printf "%-6s | %12.0f | %14.0f | %5.2fx\n" name
        fifo.Experiments.cm_kb_per_sec elev.Experiments.cm_kb_per_sec
        (elev.Experiments.cm_kb_per_sec /. fifo.Experiments.cm_kb_per_sec))
    [ ("cp", `Cp); ("scp", `Scp) ];
  print_newline ()

let print_media () =
  header
    "Extension (s1/s4): continuous-media playback under CPU load (5 s movie,      15 fps + 64 KB/s audio, RZ58)";
  Printf.printf "%-8s | %4s | %8s | %6s | %10s | %10s | %s\n" "player" "load"
    "frames" "late" "underruns" "player CPU" "fps";
  Printf.printf "%s\n" line;
  List.iter
    (fun (name, player) ->
      List.iter
        (fun load ->
          let r = Experiments.measure_media ~player ~load () in
          Printf.printf "%-8s | %4d | %8d | %6d | %10d | %9.2fs | %.1f\n" name
            load r.Experiments.md_frames r.Experiments.md_late_frames
            r.Experiments.md_audio_underruns r.Experiments.md_player_cpu_sec
            r.Experiments.md_fps)
        [ 0; 2; 4 ])
    [ ("process", `Process); ("splice", `Splice) ];
  print_newline ()

let print_relatedwork ?(file_bytes = 4 * mb) () =
  header
    "Related work (s7): copy mechanisms compared -- read/write (cp),      memory-mapped (mcp, Govindan/Anderson-style), splice (scp)";
  Printf.printf "%-6s | %-5s | %10s | %s\n" "Disk" "mode" "KB/s" "verified";
  Printf.printf "%s\n" line;
  List.iter
    (fun disk ->
      List.iter
        (fun (name, mode) ->
          let r = Experiments.measure_copy ~mode ~disk ~file_bytes () in
          Printf.printf "%-6s | %-5s | %10.0f | %b\n"
            (Experiments.disk_name disk) name r.Experiments.cm_kb_per_sec
            r.Experiments.cm_verified)
        [ ("cp", `Cp); ("mcp", `Mcp); ("scp", `Scp) ])
    [ `Ram; `Rz58 ];
  print_newline ()

let print_sendfile () =
  header
    "Extension (sendfile): file served over TCP, server CPU -- read/write      loop vs file-to-TCP splice (4 MB, RZ58 server disk)";
  Printf.printf "%-10s | %6s | %10s | %10s | %12s | %6s\n" "server" "loss"
    "verified" "KB/s" "server CPU" "retx";
  Printf.printf "%s\n" line;
  List.iter
    (fun loss ->
      List.iter
        (fun (name, mode) ->
          let r = Experiments.measure_sendfile ~mode ~loss () in
          Printf.printf "%-10s | %5.0f%% | %10b | %10.0f | %11.2fs | %6d\n"
            name (loss *. 100.) r.Experiments.sf_verified
            r.Experiments.sf_kb_per_sec r.Experiments.sf_server_cpu_sec
            r.Experiments.sf_retransmits)
        [ ("readwrite", `ReadWrite); ("sendfile", `Sendfile) ])
    [ 0.0; 0.01 ];
  print_newline ()

let print_fanout ?(file_bytes = 2 * mb) () =
  header
    (Printf.sprintf
       "Extension (splice graphs): %d MB file fanned out to N TCP clients, one \
        disk pass (RZ58 server, 40 MB/s segment)"
       (file_bytes / mb));
  Printf.printf "%-7s | %9s | %11s | %9s | %11s | %s\n" "clients" "agg KB/s"
    "KB/s/clnt" "dev reads" "server CPU" "verified";
  Printf.printf "%s\n" line;
  List.iter
    (fun n ->
      let r =
        Experiments.measure_fanout ~clients:n ~file_bytes ~bandwidth:40e6 ()
      in
      Printf.printf "%7d | %9.0f | %11.0f | %9d | %10.2fs | %b\n" n
        r.Experiments.fo_agg_kb_per_sec
        (r.Experiments.fo_agg_kb_per_sec /. float_of_int n)
        r.Experiments.fo_device_reads r.Experiments.fo_server_cpu_sec
        r.Experiments.fo_verified)
    [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ];
  Printf.printf
    "(aggregate should rise until the NIC or the client CPU saturates; dev \
     reads must not grow with N)\n";
  (* Per-block event log of one small run: the graph category traced and
     dumped as one JSON object per line, for offline timeline tooling. *)
  let path = "fanout-trace.jsonl" in
  let oc = open_out path in
  let fmt = Format.formatter_of_out_channel oc in
  ignore
    (Experiments.measure_fanout ~clients:2 ~file_bytes:(256 * 1024)
       ~trace_json:fmt ());
  Format.pp_print_flush fmt ();
  close_out oc;
  Printf.printf "(per-block graph trace of a 2-client run written to %s)\n" path;
  print_newline ()

let print_timeline () =
  header
    "Figure-equivalent: test-program progress over time (ops per 250 ms,      RAM disk, 1 MB/s paced copy; idle rate = 250)";
  let render mode_name mode =
    let buckets =
      Experiments.availability_timeline ~mode ~disk:`Ram ~pace:1.0e6 ~ops:1500 ()
    in
    let cells =
      List.map
        (fun n ->
          (* 0-250 ops per bucket, rendered on an 8-level scale. *)
          let level = min 7 (n * 8 / 251) in
          String.make 1 (String.get " .:-=+*#" level))
        buckets
    in
    Printf.printf "%-4s |%s| (%d buckets; mean %.0f ops)\n" mode_name
      (String.concat "" cells) (List.length buckets)
      (float_of_int (List.fold_left ( + ) 0 buckets)
      /. float_of_int (max 1 (List.length buckets)))
  in
  render "cp" `Cp;
  render "scp" `Scp;
  Printf.printf
    "(denser = more CPU left for the test program; scp rows should be      darker and shorter)\n";
  print_newline ()

let print_cpuspeed_sweep ?(file_bytes = 4 * mb) () =
  header
    "What-if: CPU speed scaling (RAM + RZ58 throughput, 4 MB copy) -- how      the splice advantage moves as processors outpace devices";
  Printf.printf "%-22s | %-5s | %9s | %9s | %6s\n" "machine" "disk" "SCP KB/s"
    "CP KB/s" "%impr";
  Printf.printf "%s\n" line;
  List.iter
    (fun (label, machine_config) ->
      List.iter
        (fun disk ->
          let scp =
            Experiments.measure_copy ~mode:`Scp ~disk ~file_bytes
              ~machine_config ()
          in
          let cp =
            Experiments.measure_copy ~mode:`Cp ~disk ~file_bytes
              ~machine_config ()
          in
          Printf.printf "%-22s | %-5s | %9.0f | %9.0f | %5.0f%%\n" label
            (Experiments.disk_name disk) scp.Experiments.cm_kb_per_sec
            cp.Experiments.cm_kb_per_sec
            ((scp.Experiments.cm_kb_per_sec -. cp.Experiments.cm_kb_per_sec)
            /. cp.Experiments.cm_kb_per_sec *. 100.0))
        [ `Ram; `Rz58 ])
    [
      ("5000/200 (25MHz)", Kpath_kernel.Config.decstation_5000_200);
      ("5000/240 (40MHz)", Kpath_kernel.Config.decstation_5000_240);
      ( "4x what-if",
        Kpath_kernel.Config.scaled Kpath_kernel.Config.decstation_5000_200
          ~cpu_factor:4.0 );
    ];
  print_newline ()

(* {1 Cluster sweep (s7 "larger transfer units")} *)

let time_host f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let cluster_rows ?(file_bytes = 8 * mb) ?(ops = 2000)
    ?(sizes = [ 1; 2; 4; 8; 16 ]) ?(disks = [ `Ram; `Rz56; `Rz58 ]) () =
  List.concat_map
    (fun disk ->
      List.map
        (fun cluster ->
          time_host (fun () ->
              Experiments.measure_cluster ~disk ~file_bytes ~ops ~cluster ()))
        sizes)
    disks

let print_cluster_sweep ?(file_bytes = 8 * mb) ?ops ?sizes ?disks () =
  header
    (Printf.sprintf
       "Sweep (s7): clustered multi-block I/O, %d MB splice copy --      throughput, device interrupts and CPU availability vs. max_cluster"
       (file_bytes / mb));
  Printf.printf "%-5s | %7s | %9s | %9s | %7s | %7s\n" "Disk" "cluster"
    "SCP KB/s" "intrs/MB" "F_scp" "host s";
  Printf.printf "%s\n" line;
  List.iter
    (fun (r, host) ->
      Printf.printf "%-5s | %7d | %9.0f | %9.1f | %7.3f | %7.2f\n"
        (Experiments.disk_name r.Experiments.cl_disk)
        r.Experiments.cl_cluster r.Experiments.cl_scp_kbps
        r.Experiments.cl_intrs_per_mb r.Experiments.cl_f_scp host)
    (cluster_rows ~file_bytes ?ops ?sizes ?disks ());
  Printf.printf
    "(interrupts/MB should fall ~linearly with the cluster size; cluster=1 \
     is the paper's per-block path)\n";
  print_newline ()

(* {1 Filter-program sweep: VM interpreter overhead vs built-in stages} *)

let prog_stages () =
  [
    `Plain;
    `Checksum;
    `Prog ("prog-checksum", [ Kpath_vm.Samples.checksum () ]);
    (* Two identical masks chain to the identity, so the pattern check
       still passes while the row prices a transforming program (and
       the copy-on-write it triggers) -- twice over. *)
    `Prog
      ( "prog-xor2",
        [
          Kpath_vm.Samples.xor_mask ~key:0x5a;
          Kpath_vm.Samples.xor_mask ~key:0x5a;
        ] );
    (* Same identity trick for the per-block keystream cipher: two
       identical xor-streams cancel, so the copy still verifies while
       each block is transformed twice (scatter/store idiom). *)
    `Prog
      ( "prog-xorstream2",
        [
          Kpath_vm.Samples.xor_stream ~key:0x6b;
          Kpath_vm.Samples.xor_stream ~key:0x6b;
        ] );
    (* Read-only probes: byte histogram (histogram idiom) and
       content-defined chunking (rolling-hash idiom). *)
    `Prog ("prog-histogram", [ Kpath_vm.Samples.histogram () ]);
    `Prog ("prog-dedup", [ Kpath_vm.Samples.dedup_chunks ~bits:11 ]);
  ]

let prog_backends =
  [ ("compiled", `Compiled); ("checked", `Checked); ("interp", `Interp) ]

let prog_rows ?(file_bytes = 4 * mb) ?(disks = [ `Ram; `Rz58 ]) () =
  List.map
    (fun disk ->
      ( disk,
        List.map
          (fun (bname, backend) ->
            ( bname,
              List.map
                (fun stage ->
                  time_host (fun () ->
                      Experiments.measure_prog ~disk ~file_bytes ~stage
                        ~vm_backend:backend ()))
                (prog_stages ()) ))
          prog_backends ))
    disks

(* VM-only microbench: one program over one 8 KB payload, no simulation
   around it. The sweep rows below price whole graph copies, where
   engine events and block pumping swamp the VM's own host cost; this
   is the number the compiler actually targets. [`NoIdiom] compiles
   with the pattern library off — generic fused loops only — which is
   exactly what each idiom's fallback path runs, so interp/noidiom/
   compiled is the full tier ladder for a program. *)
let vm_micro_ns_per_run ?prog ~runs backend =
  let p =
    match prog with Some p -> p | None -> Kpath_vm.Samples.checksum ()
  in
  let data = Bytes.init 8192 (fun i -> Char.chr (i land 0xff)) in
  let emit _ _ = () in
  let run =
    match backend with
    | `Interp ->
      let st = Kpath_vm.Vm.new_state p in
      fun () -> ignore (Kpath_vm.Vm.exec p st ~data ~len:8192 ~lblk:0 ~emit)
    | (`Compiled | `NoIdiom | `Checked) as b ->
      let code =
        match b with
        | `Compiled -> Kpath_vm.Compile.compile p
        | `NoIdiom -> Kpath_vm.Compile.compile ~idioms:false p
        | `Checked -> Kpath_vm.Compile.compile ~idioms:false ~elide:false p
      in
      let st = Kpath_vm.Compile.new_state code in
      fun () ->
        ignore (Kpath_vm.Compile.exec code st ~data ~len:8192 ~lblk:0 ~emit)
  in
  run ();
  let t0 = Unix.gettimeofday () in
  for _ = 1 to runs do
    run ()
  done;
  (Unix.gettimeofday () -. t0) /. float_of_int runs *. 1e9

(* Every simulated number must agree between the two backends; host
   wall-clock is the only column allowed to move. *)
let prog_rows_bit_identical compiled interp =
  List.length compiled = List.length interp
  && List.for_all2
       (fun (a, _) (b, _) ->
         a.Experiments.pr_stage = b.Experiments.pr_stage
         && a.Experiments.pr_kb_per_sec = b.Experiments.pr_kb_per_sec
         && a.Experiments.pr_cpu_sec = b.Experiments.pr_cpu_sec
         && a.Experiments.pr_seconds = b.Experiments.pr_seconds
         && a.Experiments.pr_runs = b.Experiments.pr_runs
         && a.Experiments.pr_insns = b.Experiments.pr_insns
         && a.Experiments.pr_checksum = b.Experiments.pr_checksum
         && a.Experiments.pr_events = b.Experiments.pr_events
         && a.Experiments.pr_verified = b.Experiments.pr_verified)
       compiled interp

let print_prog_sweep ?(file_bytes = 4 * mb) () =
  header
    (Printf.sprintf
       "Sweep: verified filter programs, %d MB splice-graph copy --      VM CPU per block vs the built-in Checksum stage, per backend"
       (file_bytes / mb));
  let nblocks = file_bytes / 8192 in
  Printf.printf "%-5s | %-8s | %-13s | %9s | %7s | %9s | %9s | %6s\n" "Disk"
    "backend" "stage" "KB/s" "CPU s" "insns/blk" "us/blk" "host s";
  Printf.printf "%s\n" line;
  List.iter
    (fun (disk, per_backend) ->
      List.iter
        (fun (bname, rows) ->
          let plain_cpu =
            List.fold_left
              (fun acc (r, _) ->
                if r.Experiments.pr_stage = "plain" then
                  r.Experiments.pr_cpu_sec
                else acc)
              0.0 rows
          in
          let builtin = ref None and prog = ref None in
          List.iter
            (fun (r, host) ->
              (match r.Experiments.pr_stage with
               | "checksum" -> builtin := r.Experiments.pr_checksum
               | "prog-checksum" -> prog := r.Experiments.pr_checksum
               | _ -> ());
              Printf.printf
                "%-5s | %-8s | %-13s | %9.0f | %7.3f | %9.1f | %9.2f | %6.2f\n"
                (Experiments.disk_name disk) bname r.Experiments.pr_stage
                r.Experiments.pr_kb_per_sec r.Experiments.pr_cpu_sec
                (float_of_int r.Experiments.pr_insns /. float_of_int nblocks)
                ((r.Experiments.pr_cpu_sec -. plain_cpu) /. float_of_int nblocks
                 *. 1e6)
                host)
            rows;
          Printf.printf "%-5s   %-8s checksum(builtin) = checksum(prog): %b\n"
            (Experiments.disk_name disk) bname
            (match (!builtin, !prog) with
             | Some a, Some b -> a = b
             | _ -> false))
        per_backend;
      (match List.assoc_opt "interp" per_backend with
       | Some interp ->
         List.iter
           (fun (bname, rows) ->
             if bname <> "interp" then
               Printf.printf
                 "%-5s   %s vs interp bit-identical (sim numbers): %b\n"
                 (Experiments.disk_name disk) bname
                 (prog_rows_bit_identical rows interp))
           per_backend;
         let host_of rows stage =
           List.find_map
             (fun (r, host) ->
               if r.Experiments.pr_stage = stage then Some host else None)
             rows
         in
         (match (host_of interp "prog-checksum",
                 Option.bind (List.assoc_opt "compiled" per_backend)
                   (fun rows -> host_of rows "prog-checksum")) with
          | Some hi, Some hc when hc > 0.0 ->
            Printf.printf
              "%-5s   prog-checksum host speedup (interp/compiled): %.2fx\n"
              (Experiments.disk_name disk) (hi /. hc)
          | _ -> ())
       | None -> ()))
    (prog_rows ~file_bytes ());
  let runs = 2000 in
  let ni = vm_micro_ns_per_run ~runs `Interp in
  let nc = vm_micro_ns_per_run ~runs `Compiled in
  Printf.printf
    "VM-only, FNV checksum over one 8 KB block: interp %.0f ns/run, compiled \
     %.0f ns/run -- %.1fx host speedup\n"
    ni nc (ni /. nc);
  (* Tier ladder per idiom: interpreter, generic fused loop with every
     runtime check kept (~elide:false), the same generic loop with the
     range analysis's proven checks elided (the ~idioms:false default),
     and the recognized idiom. "elide" is checked/generic -- what the
     range analysis buys on the generic tier; "gain" is generic/idiom
     -- the value of pattern recognition on top of elision; "/byte vs
     fold" compares each idiom's per-byte cost to the byte-scan
     fold's. *)
  Printf.printf
    "VM-only per idiom, one 8 KB block (ns/run):\n%-13s | %9s | %9s | %9s | \
     %9s | %6s | %7s | %13s\n"
    "program" "interp" "checked" "generic" "idiom" "elide" "gain"
    "/byte vs fold";
  let fold_per_byte = ref 0.0 in
  List.iter
    (fun (name, p) ->
      let ni = vm_micro_ns_per_run ~prog:p ~runs `Interp in
      let nk = vm_micro_ns_per_run ~prog:p ~runs `Checked in
      let ng = vm_micro_ns_per_run ~prog:p ~runs `NoIdiom in
      let nc = vm_micro_ns_per_run ~prog:p ~runs `Compiled in
      let per_byte = nc /. 8192.0 in
      if name = "checksum" then fold_per_byte := per_byte;
      Printf.printf
        "%-13s | %9.0f | %9.0f | %9.0f | %9.0f | %5.2fx | %6.1fx | %12.2fx\n"
        name ni nk ng nc (nk /. ng) (ng /. nc)
        (if !fold_per_byte > 0.0 then per_byte /. !fold_per_byte else 0.0))
    [
      ("checksum", Kpath_vm.Samples.checksum ());
      ("xor-stream", Kpath_vm.Samples.xor_stream ~key:0x6b);
      ("histogram", Kpath_vm.Samples.histogram ());
      ("dedup-11bit", Kpath_vm.Samples.dedup_chunks ~bits:11);
      ("bounded-copy", Kpath_vm.Samples.bounded_copy ());
    ];
  Printf.printf
    "(us/blk is the simulated CPU the stage adds per 8 KB block over the \
     plain edge; the FNV program\n runs ~6 instructions per payload byte. \
     Both backends charge the same simulated cost per instruction --\n the \
     compiled closures only cut the host wall-clock of executing them)\n";
  print_newline ()

(* {1 Smoke run: small-size tables + cluster sweep, JSON for CI} *)

let json_escape s =
  String.concat ""
    (List.map
       (function '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let smoke ?(path = "BENCH_kpath.json") () =
  let file_bytes = mb in
  let ops = 500 in
  let t1, t1_host =
    time_host (fun () ->
        Experiments.table1 ~file_bytes ~ops ~pace:(Some 1.0e6) ())
  in
  let t2, t2_host = time_host (fun () -> Experiments.table2 ~file_bytes ()) in
  let cl, cl_host =
    time_host (fun () ->
        cluster_rows ~file_bytes ~ops:250 ~sizes:[ 1; 4; 8 ]
          ~disks:[ `Ram; `Rz58 ] ())
  in
  let pr_backends, pr_host =
    time_host (fun () ->
        match prog_rows ~file_bytes ~disks:[ `Ram ] () with
        | [ (_, per_backend) ] -> per_backend
        | _ -> assert false)
  in
  let pr =
    List.concat_map
      (fun (bname, rows) -> List.map (fun (r, host) -> (bname, r, host)) rows)
      pr_backends
  in
  let prog_checksums_match =
    let find stage =
      List.find_map
        (fun (bname, r, _) ->
          if bname = "compiled" && r.Experiments.pr_stage = stage then
            r.Experiments.pr_checksum
          else None)
        pr
    in
    match (find "checksum", find "prog-checksum") with
    | Some a, Some b -> a = b
    | _ -> false
  in
  let prog_compiled_match =
    match (List.assoc_opt "compiled" pr_backends,
           List.assoc_opt "checked" pr_backends,
           List.assoc_opt "interp" pr_backends) with
    | Some compiled, Some checked, Some interp ->
      prog_rows_bit_identical compiled interp
      && prog_rows_bit_identical checked interp
    | _ -> false
  in
  let buf = Buffer.create 4096 in
  let field last fmt = Printf.ksprintf
      (fun s -> Buffer.add_string buf s;
        Buffer.add_string buf (if last then "" else ", "))
      fmt
  in
  let objects rows render =
    let n = List.length rows in
    Buffer.add_string buf "[";
    List.iteri
      (fun i r ->
        Buffer.add_string buf "{";
        render r;
        Buffer.add_string buf (if i = n - 1 then "}" else "}, "))
      rows;
    Buffer.add_string buf "]"
  in
  Buffer.add_string buf "{\n  \"benchmark\": \"kpath\",\n";
  Printf.ksprintf (Buffer.add_string buf) "  \"file_bytes\": %d,\n" file_bytes;
  Buffer.add_string buf "  \"table1\": ";
  objects t1 (fun r ->
      field false "\"disk\": \"%s\""
        (json_escape (Experiments.disk_name r.Experiments.av_disk));
      field false "\"f_cp\": %.4f" r.Experiments.av_f_cp;
      field true "\"f_scp\": %.4f" r.Experiments.av_f_scp);
  Buffer.add_string buf ",\n  \"table2\": ";
  objects t2 (fun r ->
      field false "\"disk\": \"%s\""
        (json_escape (Experiments.disk_name r.Experiments.tp_disk));
      field false "\"scp_kbps\": %.1f" r.Experiments.tp_scp_kbps;
      field true "\"cp_kbps\": %.1f" r.Experiments.tp_cp_kbps);
  Buffer.add_string buf ",\n  \"cluster_sweep\": ";
  objects cl (fun (r, host) ->
      field false "\"disk\": \"%s\""
        (json_escape (Experiments.disk_name r.Experiments.cl_disk));
      field false "\"cluster\": %d" r.Experiments.cl_cluster;
      field false "\"scp_kbps\": %.1f" r.Experiments.cl_scp_kbps;
      field false "\"intrs_per_mb\": %.2f" r.Experiments.cl_intrs_per_mb;
      field false "\"f_scp\": %.4f" r.Experiments.cl_f_scp;
      field true "\"host_seconds\": %.3f" host);
  Buffer.add_string buf ",\n  \"prog_sweep\": ";
  objects pr (fun (bname, r, host) ->
      field false "\"stage\": \"%s\"" (json_escape r.Experiments.pr_stage);
      field false "\"backend\": \"%s\"" (json_escape bname);
      field false "\"kb_per_sec\": %.1f" r.Experiments.pr_kb_per_sec;
      field false "\"cpu_sec\": %.4f" r.Experiments.pr_cpu_sec;
      field false "\"runs\": %d" r.Experiments.pr_runs;
      field false "\"insns\": %d" r.Experiments.pr_insns;
      field false "\"verified\": %b" r.Experiments.pr_verified;
      field true "\"host_seconds\": %.3f" host);
  Printf.ksprintf (Buffer.add_string buf)
    ",\n  \"prog_checksum_match\": %b" prog_checksums_match;
  Printf.ksprintf (Buffer.add_string buf)
    ",\n  \"prog_compiled_match\": %b" prog_compiled_match;
  Printf.ksprintf (Buffer.add_string buf)
    ",\n  \"host_seconds\": {\"table1\": %.3f, \"table2\": %.3f, \
     \"cluster_sweep\": %.3f, \"prog_sweep\": %.3f}\n}\n"
    t1_host t2_host cl_host pr_host;
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "smoke: table1 %.1fs, table2 %.1fs, cluster sweep %.1fs, \
                 prog sweep %.1fs; results written to %s\n"
    t1_host t2_host cl_host pr_host path

(* {1 Wall-clock sweep: heap vs wheel engine, events/sec + GC, JSON} *)

(* Run [f] with the GC settled, returning its result plus host seconds,
   minor words allocated and major collections triggered. *)
let gc_run f =
  Gc.full_major ();
  let s0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let host = Unix.gettimeofday () -. t0 in
  let s1 = Gc.quick_stat () in
  ( r,
    host,
    s1.Gc.minor_words -. s0.Gc.minor_words,
    s1.Gc.major_collections - s0.Gc.major_collections )

(* Run [f] in a forked child and marshal its result back. A 1024-client
   fan-out legitimately holds ~1 GB of queued frames live; OCaml 5.1
   cannot compact the major heap afterwards, so without process
   isolation every later row would pay sweep cost proportional to the
   accumulated heap of the rows before it — the measurements would
   depend on their position in the sweep. *)
(* Throughput-oriented GC for the measurement children: a 32 MB minor
   heap and a relaxed space overhead trade transient footprint (the
   children die right after the row) for fewer collections, the same
   way one sizes a JVM heap for a benchmark host. Recorded in the JSON
   so the numbers are interpretable. *)
let bench_gc_space_overhead = 200
let bench_gc_minor_heap = 4 * 1024 * 1024 (* words *)

(* Peak resident set (kB) of the calling process, from /proc/self/status.
   Read inside the forked measurement child, so each row reports its own
   high-water mark rather than the accumulated peak of the sweep.
   Returns 0 where the proc file is unavailable (non-Linux hosts). *)
let vm_hwm_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> 0
      | line when String.length line > 6 && String.sub line 0 6 = "VmHWM:" ->
        Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Fun.id
      | _ -> scan ()
    in
    Fun.protect ~finally:(fun () -> close_in ic) scan

let in_child (f : unit -> 'a) : 'a =
  (* The child inherits stdout's buffer; anything pending would be
     written a second time when the child (or a domain it spawns)
     flushes on exit. *)
  flush stdout;
  flush stderr;
  let rd, wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close rd;
    Gc.set
      { (Gc.get ()) with
        Gc.space_overhead = bench_gc_space_overhead;
        minor_heap_size = bench_gc_minor_heap;
      };
    let result = (try Ok (f ()) with e -> Error (Printexc.to_string e)) in
    let oc = Unix.out_channel_of_descr wr in
    Marshal.to_channel oc result [];
    flush oc;
    Unix._exit 0
  | pid -> (
    Unix.close wr;
    let ic = Unix.in_channel_of_descr rd in
    let result : ('a, string) result = Marshal.from_channel ic in
    close_in ic;
    ignore (Unix.waitpid [] pid);
    match result with
    | Ok v -> v
    | Error msg -> failwith ("sweep-wallclock child: " ^ msg))

(* Pure engine scheduling rate: 64 self-rescheduling callouts, no
   processes or devices — isolates the queue backend's per-event cost
   and shows the pooled handles' steady-state allocation (~0 words). *)
let engine_microbench backend =
  let open Kpath_sim in
  let e = Engine.create ~backend ~tick:(Time.us 1000) () in
  let stop_at = ref 0 in
  let rec tick () =
    if Engine.events_fired e < !stop_at then
      ignore (Engine.schedule_after e (Time.us 700) tick)
  in
  let run_batch target =
    stop_at := target;
    for _ = 1 to 64 do
      ignore (Engine.schedule_after e (Time.us 700) tick)
    done;
    Engine.run e
  in
  run_batch 10_000 (* warm-up: pool and wheel reach steady state *);
  let base = Engine.events_fired e in
  let n = 500_000 in
  let (), host, minor, majors = gc_run (fun () -> run_batch (base + n)) in
  let fired = Engine.events_fired e - base in
  (fired, host, minor /. float_of_int fired, majors)

let backend_config backend =
  { Kpath_kernel.Config.decstation_5000_200 with
    Kpath_kernel.Config.sim_engine = backend;
  }

let sweep_wallclock ?(path = "BENCH_wallclock.json") () =
  header
    "Sweep (host): simulator wall-clock and GC cost, binary-heap vs \
     timing-wheel event queue";
  let backends = [ ("heap", `Heap); ("wheel", `Wheel) ] in
  let fan_clients = [ 1; 4; 16; 64; 256; 1024 ] in
  let evps events host = float_of_int events /. host in
  Printf.printf "%-26s | %-5s | %9s | %8s | %11s | %11s | %5s | %9s\n"
    "workload" "queue" "events" "host s" "events/s" "minor words" "major"
    "maxRSS kB";
  Printf.printf "%s\n" line;
  let micro_rows =
    List.map
      (fun (name, backend) ->
        let (fired, host, words_per_event, majors), hwm =
          in_child (fun () ->
              (* [let] sequencing: a tuple would evaluate right-to-left
                 and read the high-water mark before the workload runs. *)
              let r = engine_microbench backend in
              (r, vm_hwm_kb ()))
        in
        Printf.printf
          "%-26s | %-5s | %9d | %8.3f | %11.0f | %8.2f/ev | %5d | %9d\n"
          "engine-only callouts" name fired host
          (evps fired host) words_per_event majors hwm;
        (name, fired, host, words_per_event, majors, hwm))
      backends
  in
  let copy_rows =
    List.map
      (fun (name, backend) ->
        let (m, host, minor, majors), hwm =
          in_child (fun () ->
              let r =
                gc_run (fun () ->
                    Experiments.measure_copy ~mode:`Scp ~disk:`Rz58
                      ~file_bytes:(8 * mb)
                      ~machine_config:(backend_config backend) ())
              in
              (r, vm_hwm_kb ()))
        in
        Printf.printf
          "%-26s | %-5s | %9d | %8.3f | %11.0f | %11.0f | %5d | %9d\n"
          "scp copy 8 MB rz58" name m.Experiments.cm_events host
          (evps m.Experiments.cm_events host)
          minor majors hwm;
        (name, m, host, minor, majors, hwm))
      backends
  in
  let prog_wc_rows =
    (* Two VM workloads per engine x backend cell: the fold-idiom
       checksum and the rolling-hash chunker, so the wall-clock gate
       watches an idiom from each loop family. *)
    let workloads =
      [
        ("checksum", fun () -> [ Kpath_vm.Samples.checksum () ]);
        ("dedup", fun () -> [ Kpath_vm.Samples.dedup_chunks ~bits:11 ]);
      ]
    in
    List.concat_map
      (fun (wname, progs) ->
        List.concat_map
          (fun (name, backend) ->
            List.map
              (fun (vm_name, vm_backend) ->
                let (r, host, minor, majors), hwm =
                  in_child (fun () ->
                      let r =
                        gc_run (fun () ->
                            Experiments.measure_prog ~disk:`Rz58
                              ~file_bytes:(8 * mb)
                              ~stage:(`Prog ("prog-" ^ wname, progs ()))
                              ~machine_config:(backend_config backend)
                              ~vm_backend ())
                      in
                      (r, vm_hwm_kb ()))
                in
                Printf.printf
                  "%-26s | %-5s | %9d | %8.3f | %11.0f | %11.0f | %5d | %9d\n"
                  (Printf.sprintf "prog %s 8 MB %s" wname vm_name)
                  name r.Experiments.pr_events host
                  (evps r.Experiments.pr_events host)
                  minor majors hwm;
                (wname, name, vm_name, r, host, minor, majors, hwm))
              prog_backends)
          backends)
      workloads
  in
  let fan_rows =
    List.concat_map
      (fun (name, backend) ->
        List.map
          (fun clients ->
            let (m, host, minor, majors), hwm =
              in_child (fun () ->
                  let r =
                    gc_run (fun () ->
                        Experiments.measure_fanout ~clients ~file_bytes:mb
                          ~bandwidth:40e6
                          ~machine_config:(backend_config backend) ())
                  in
                  (r, vm_hwm_kb ()))
            in
            Printf.printf
              "%-26s | %-5s | %9d | %8.3f | %11.0f | %11.0f | %5d | %9d\n"
              (Printf.sprintf "fan-out %d clients" clients)
              name m.Experiments.fo_events host
              (evps m.Experiments.fo_events host)
              minor majors hwm;
            (name, clients, m, host, minor, majors, hwm))
          fan_clients)
      backends
  in
  (* Sharded fan-out: the million-client shape. Per-client file sizes
     shrink as the population grows so a row prices the *population*
     (per-client footprint, merge, domain fan-out), not total bytes.
     The 1M row is a smoke test: one 8 KB block per client. *)
  let shard_cases =
    [ (4096, 64 * 1024); (65536, 16 * 1024); (1024 * 1024, 8 * 1024) ]
  in
  let shard_rows =
    List.concat_map
      (fun (clients, file_bytes) ->
        List.map
          (fun domains ->
            let (m, host, minor, majors), hwm =
              in_child (fun () ->
                  let r =
                    gc_run (fun () ->
                        Experiments.measure_fanout_sharded ~clients ~domains
                          ~file_bytes ~bandwidth:40e6 ())
                  in
                  (r, vm_hwm_kb ()))
            in
            Printf.printf
              "%-26s | K=%-3d | %9d | %8.3f | %11.0f | %11.0f | %5d | %9d\n"
              (Printf.sprintf "sharded fan-out %d" clients)
              domains m.Experiments.fsh_events host
              (evps m.Experiments.fsh_events host)
              minor majors hwm;
            (clients, domains, file_bytes, m, host, minor, majors, hwm))
          [ 1; 4 ])
      shard_cases
  in
  (let per_client (clients, _, _, _, _, _, _, hwm) =
     if clients = 1024 * 1024 then
       Some (float_of_int hwm *. 1024.0 /. float_of_int clients)
     else None
   in
   match List.find_map per_client shard_rows with
   | Some b ->
     Printf.printf
       "(sharded digests are bit-identical across K; 1M-client row costs \
        %.0f bytes/client incl. runtime)\n"
       b
   | None -> ());
  let buf = Buffer.create 4096 in
  let field last fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_string buf (if last then "" else ", "))
      fmt
  in
  let objects rows render =
    let n = List.length rows in
    Buffer.add_string buf "[";
    List.iteri
      (fun i r ->
        Buffer.add_string buf "{";
        render r;
        Buffer.add_string buf (if i = n - 1 then "}" else "}, "))
      rows;
    Buffer.add_string buf "]"
  in
  Buffer.add_string buf "{\n  \"benchmark\": \"kpath-wallclock\",\n";
  Printf.ksprintf (Buffer.add_string buf)
    "  \"gc\": {\"space_overhead\": %d, \"minor_heap_words\": %d},\n"
    bench_gc_space_overhead bench_gc_minor_heap;
  Buffer.add_string buf "  \"engine_micro\": ";
  objects micro_rows (fun (name, fired, host, words_per_event, majors, hwm) ->
      field false "\"engine\": \"%s\"" (json_escape name);
      field false "\"events\": %d" fired;
      field false "\"host_seconds\": %.4f" host;
      field false "\"events_per_sec\": %.0f" (evps fired host);
      field false "\"minor_words_per_event\": %.3f" words_per_event;
      field false "\"major_collections\": %d" majors;
      field true "\"max_rss_kb\": %d" hwm);
  Buffer.add_string buf ",\n  \"copy\": ";
  objects copy_rows (fun (name, m, host, minor, majors, hwm) ->
      field false "\"engine\": \"%s\"" (json_escape name);
      field false "\"file_bytes\": %d" (8 * mb);
      field false "\"events\": %d" m.Experiments.cm_events;
      field false "\"host_seconds\": %.4f" host;
      field false "\"events_per_sec\": %.0f"
        (evps m.Experiments.cm_events host);
      field false "\"minor_words\": %.0f" minor;
      field false "\"major_collections\": %d" majors;
      field false "\"max_rss_kb\": %d" hwm;
      field true "\"verified\": %b" m.Experiments.cm_verified);
  Buffer.add_string buf ",\n  \"prog\": ";
  objects prog_wc_rows
    (fun (wname, name, vm_name, r, host, minor, majors, hwm) ->
      field false "\"engine\": \"%s\"" (json_escape name);
      field false "\"backend\": \"%s\"" (json_escape vm_name);
      field false "\"workload\": \"%s\"" (json_escape wname);
      field false "\"file_bytes\": %d" (8 * mb);
      field false "\"events\": %d" r.Experiments.pr_events;
      field false "\"host_seconds\": %.4f" host;
      field false "\"events_per_sec\": %.0f" (evps r.Experiments.pr_events host);
      field false "\"insns\": %d" r.Experiments.pr_insns;
      field false "\"minor_words\": %.0f" minor;
      field false "\"major_collections\": %d" majors;
      field false "\"max_rss_kb\": %d" hwm;
      field true "\"verified\": %b" r.Experiments.pr_verified);
  Buffer.add_string buf ",\n  \"fanout\": ";
  objects fan_rows (fun (name, clients, m, host, minor, majors, hwm) ->
      field false "\"engine\": \"%s\"" (json_escape name);
      field false "\"clients\": %d" clients;
      field false "\"file_bytes\": %d" mb;
      field false "\"events\": %d" m.Experiments.fo_events;
      field false "\"host_seconds\": %.4f" host;
      field false "\"events_per_sec\": %.0f"
        (evps m.Experiments.fo_events host);
      field false "\"minor_words\": %.0f" minor;
      field false "\"major_collections\": %d" majors;
      field false "\"max_rss_kb\": %d" hwm;
      field true "\"verified\": %b" m.Experiments.fo_verified);
  Buffer.add_string buf ",\n  \"fanout_sharded\": ";
  objects shard_rows
    (fun (clients, domains, file_bytes, m, host, minor, majors, hwm) ->
      field false "\"clients\": %d" clients;
      field false "\"domains\": %d" domains;
      field false "\"file_bytes\": %d" file_bytes;
      field false "\"events\": %d" m.Experiments.fsh_events;
      field false "\"host_seconds\": %.4f" host;
      field false "\"events_per_sec\": %.0f"
        (evps m.Experiments.fsh_events host);
      field false "\"sim_seconds\": %.4f" m.Experiments.fsh_seconds;
      field false "\"digest\": \"%016x\"" m.Experiments.fsh_digest;
      field false "\"minor_words\": %.0f" minor;
      field false "\"major_collections\": %d" majors;
      field false "\"max_rss_kb\": %d" hwm;
      field true "\"verified\": %b" m.Experiments.fsh_verified);
  Buffer.add_string buf "\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "(results written to %s)\n" path;
  print_newline ()

(* {1 Bechamel microbenchmarks: one per table} *)

let bechamel () =
  header
    "Bechamel: host cost of regenerating each table (reduced problem sizes)";
  let open Bechamel in
  let open Toolkit in
  let tests =
    [
      Test.make ~name:"table1-row-ram-paced"
        (Staged.stage (fun () ->
             ignore
               (Experiments.slowdown ~mode:`Scp ~disk:`Ram
                  ~file_bytes:(256 * 1024) ~pace:1.0e6 ~ops:50 ())));
      Test.make ~name:"table2-row-ram"
        (Staged.stage (fun () ->
             ignore
               (Experiments.measure_copy ~mode:`Scp ~disk:`Ram
                  ~file_bytes:(256 * 1024) ())));
      Test.make ~name:"table2-row-rz58"
        (Staged.stage (fun () ->
             ignore
               (Experiments.measure_copy ~mode:`Scp ~disk:`Rz58
                  ~file_bytes:(256 * 1024) ())));
      Test.make ~name:"udp-relay-splice"
        (Staged.stage (fun () ->
             ignore (Experiments.measure_relay ~mode:`Splice ~datagrams:50 ())));
    ]
  in
  List.iter
    (fun test ->
      let instances = Instance.[ monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 2.0) ~kde:None () in
      let results = Benchmark.all cfg instances test in
      let analysis =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false
             ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-28s %12.3f ms/run\n" name (est /. 1e6)
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        analysis)
    tests;
  print_newline ()

(* {1 Driver} *)

let all_targets ~quick =
  let file_bytes = if quick then mb else 8 * mb in
  let ops = if quick then 500 else 2000 in
  print_table1 ~file_bytes ~ops ~pace:(Some 1.0e6) ();
  print_table2 ~file_bytes ();
  print_watermarks ~file_bytes:(min file_bytes (4 * mb)) ();
  print_lockstep ~file_bytes:(min file_bytes (4 * mb)) ();
  if not quick then begin
    print_size_sweep ();
    print_blocksize_sweep ();
    print_cachesize_sweep ()
  end;
  print_udp ();
  print_media ();
  print_sendfile ();
  print_fanout ~file_bytes:(min file_bytes (2 * mb)) ();
  (if quick then
     print_cluster_sweep ~file_bytes:(2 * mb) ~ops:500 ~sizes:[ 1; 4; 8 ]
       ~disks:[ `Ram; `Rz58 ] ()
   else print_cluster_sweep ());
  print_prog_sweep ~file_bytes:(if quick then mb else 4 * mb) ();
  print_relatedwork ();
  if not quick then print_cpuspeed_sweep ();
  print_timeline ();
  print_elevator ~file_bytes:(min file_bytes (4 * mb)) ();
  if not quick then print_table1 ~file_bytes ~ops ~pace:None ();
  bechamel ()

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  Printf.printf
    "kpath bench -- reproduction of Fall & Pasquale, USENIX Winter 1993\n";
  Printf.printf "machine model: %s\n"
    (Format.asprintf "%a" Kpath_kernel.Config.pp
       Kpath_kernel.Config.decstation_5000_200);
  match args with
  | [] -> all_targets ~quick:false
  | [ "quick" ] -> all_targets ~quick:true
  | targets ->
    List.iter
      (function
        | "table1" -> print_table1 ~pace:(Some 1.0e6) ()
        | "table1-natural" -> print_table1 ~pace:None ()
        | "table2" -> print_table2 ()
        | "ablation-watermarks" -> print_watermarks ()
        | "ablation-lockstep" -> print_lockstep ()
        | "sweep-size" -> print_size_sweep ()
        | "sweep-blocksize" -> print_blocksize_sweep ()
        | "sweep-cachesize" -> print_cachesize_sweep ()
        | "table-udp" -> print_udp ()
        | "table-media" -> print_media ()
        | "ablation-elevator" -> print_elevator ()
        | "table-sendfile" -> print_sendfile ()
        | "sweep-fanout" -> print_fanout ()
        | "sweep-cluster" -> print_cluster_sweep ()
        | "sweep-cluster-quick" ->
          print_cluster_sweep ~file_bytes:(2 * mb) ~ops:500 ~sizes:[ 1; 4; 8 ]
            ~disks:[ `Ram; `Rz58 ] ()
        | "sweep-prog" -> print_prog_sweep ()
        | "sweep-prog-quick" -> print_prog_sweep ~file_bytes:mb ()
        | "smoke" -> smoke ()
        | "sweep-wallclock" -> sweep_wallclock ()
        | "table-relatedwork" -> print_relatedwork ()
        | "sweep-cpuspeed" -> print_cpuspeed_sweep ()
        | "timeline" -> print_timeline ()
        | "bechamel" -> bechamel ()
        | "all" -> all_targets ~quick:false
        | other ->
          Printf.eprintf
            "unknown target %s (try: table1 table1-natural table2 \
             ablation-watermarks ablation-lockstep sweep-size sweep-cluster \
             sweep-prog sweep-wallclock smoke table-udp table-media bechamel \
             quick all)\n"
            other;
          exit 1)
      targets
